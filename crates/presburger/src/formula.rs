//! Linear terms, constraints, and quantifier-free Presburger formulas.

use std::collections::BTreeMap;
use std::fmt;

/// A natural-number variable, identified by its index in a [`VarPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Allocates fresh variables and remembers optional human-readable names and
/// per-variable upper bounds (used by the bounded solver).
#[derive(Debug, Clone, Default)]
pub struct VarPool {
    names: Vec<String>,
    bounds: Vec<Option<u64>>,
}

impl VarPool {
    /// An empty pool.
    pub fn new() -> VarPool {
        VarPool::default()
    }

    /// Allocate a fresh unnamed, unbounded variable.
    pub fn fresh(&mut self) -> Var {
        self.fresh_named(format!("v{}", self.names.len()))
    }

    /// Allocate a fresh variable with a display name.
    pub fn fresh_named(&mut self, name: impl Into<String>) -> Var {
        self.names.push(name.into());
        self.bounds.push(None);
        Var((self.names.len() - 1) as u32)
    }

    /// Allocate a fresh variable with an inclusive upper bound.
    pub fn fresh_bounded(&mut self, name: impl Into<String>, bound: u64) -> Var {
        let v = self.fresh_named(name);
        self.bounds[v.0 as usize] = Some(bound);
        v
    }

    /// Set (or overwrite) the upper bound of a variable.
    pub fn set_bound(&mut self, var: Var, bound: u64) {
        self.bounds[var.0 as usize] = Some(bound);
    }

    /// The upper bound of a variable, if any was declared.
    pub fn bound(&self, var: Var) -> Option<u64> {
        self.bounds.get(var.0 as usize).copied().flatten()
    }

    /// The display name of a variable.
    pub fn name(&self, var: Var) -> &str {
        &self.names[var.0 as usize]
    }

    /// The number of variables allocated so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variable has been allocated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Declared per-variable bounds, indexed by variable number.
    pub fn declared_bounds(&self) -> &[Option<u64>] {
        &self.bounds
    }
}

/// A linear expression `Σ cᵢ·xᵢ + k` with integer coefficients over
/// natural-number variables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinearExpr {
    coeffs: BTreeMap<Var, i64>,
    constant: i64,
}

impl LinearExpr {
    /// The constant expression `k`.
    pub fn constant(k: i64) -> LinearExpr {
        LinearExpr {
            coeffs: BTreeMap::new(),
            constant: k,
        }
    }

    /// The expression consisting of a single variable.
    pub fn var(v: Var) -> LinearExpr {
        LinearExpr::term(v, 1)
    }

    /// The expression `c·v`.
    pub fn term(v: Var, c: i64) -> LinearExpr {
        let mut coeffs = BTreeMap::new();
        if c != 0 {
            coeffs.insert(v, c);
        }
        LinearExpr {
            coeffs,
            constant: 0,
        }
    }

    /// The constant part `k`.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// Iterate over `(variable, coefficient)` pairs with non-zero coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (Var, i64)> + '_ {
        self.coeffs.iter().map(|(v, c)| (*v, *c))
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: Var) -> i64 {
        self.coeffs.get(&v).copied().unwrap_or(0)
    }

    /// Number of variables with non-zero coefficient.
    pub fn arity(&self) -> usize {
        self.coeffs.len()
    }

    /// Add another expression.
    // Deliberately not `impl Add`: takes `&LinearExpr` by reference, which
    // the operator trait's signature cannot express without extra clones.
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, other: &LinearExpr) -> LinearExpr {
        for (v, c) in other.terms() {
            self.add_term(v, c);
        }
        self.constant += other.constant;
        self
    }

    /// Subtract another expression.
    #[allow(clippy::should_implement_trait)] // see `add`
    pub fn sub(mut self, other: &LinearExpr) -> LinearExpr {
        for (v, c) in other.terms() {
            self.add_term(v, -c);
        }
        self.constant -= other.constant;
        self
    }

    /// Add `c·v` in place.
    pub fn add_term(&mut self, v: Var, c: i64) {
        let entry = self.coeffs.entry(v).or_insert(0);
        *entry += c;
        if *entry == 0 {
            self.coeffs.remove(&v);
        }
    }

    /// Add a constant in place.
    pub fn add_constant(&mut self, k: i64) {
        self.constant += k;
    }

    /// Multiply the whole expression by a scalar.
    pub fn scale(mut self, k: i64) -> LinearExpr {
        if k == 0 {
            return LinearExpr::constant(0);
        }
        for c in self.coeffs.values_mut() {
            *c *= k;
        }
        self.constant *= k;
        self
    }

    /// Evaluate under an assignment (variables default to 0 when the
    /// assignment vector is too short).
    pub fn eval(&self, assignment: &[u64]) -> i64 {
        let mut total = self.constant;
        for (v, c) in self.terms() {
            let value = assignment.get(v.0 as usize).copied().unwrap_or(0);
            total += c * value as i64;
        }
        total
    }

    /// Negate the expression.
    #[allow(clippy::should_implement_trait)] // named for symmetry with `add`/`sub`
    pub fn neg(self) -> LinearExpr {
        self.scale(-1)
    }
}

impl From<Var> for LinearExpr {
    fn from(v: Var) -> Self {
        LinearExpr::var(v)
    }
}

impl From<i64> for LinearExpr {
    fn from(k: i64) -> Self {
        LinearExpr::constant(k)
    }
}

impl fmt::Display for LinearExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.terms() {
            if first {
                if c == 1 {
                    write!(f, "{v}")?;
                } else {
                    write!(f, "{c}·{v}")?;
                }
                first = false;
            } else if c >= 0 {
                write!(f, " + {}·{v}", c)?;
            } else {
                write!(f, " - {}·{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// An atomic constraint over a linear expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// `expr ≥ 0`.
    Ge0(LinearExpr),
    /// `expr = 0`.
    Eq0(LinearExpr),
}

impl Constraint {
    /// `lhs = rhs`.
    pub fn eq(lhs: LinearExpr, rhs: LinearExpr) -> Constraint {
        Constraint::Eq0(lhs.sub(&rhs))
    }

    /// `lhs ≥ rhs`.
    pub fn ge(lhs: LinearExpr, rhs: LinearExpr) -> Constraint {
        Constraint::Ge0(lhs.sub(&rhs))
    }

    /// `lhs ≤ rhs`.
    pub fn le(lhs: LinearExpr, rhs: LinearExpr) -> Constraint {
        Constraint::Ge0(rhs.sub(&lhs))
    }

    /// Whether the constraint holds under the assignment.
    pub fn holds(&self, assignment: &[u64]) -> bool {
        match self {
            Constraint::Ge0(e) => e.eval(assignment) >= 0,
            Constraint::Eq0(e) => e.eval(assignment) == 0,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Ge0(e) => write!(f, "{e} ≥ 0"),
            Constraint::Eq0(e) => write!(f, "{e} = 0"),
        }
    }
}

/// A quantifier-free Presburger formula. All free variables are interpreted
/// existentially over the naturals by the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// An atomic linear constraint.
    Atom(Constraint),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
}

impl Formula {
    /// `lhs = rhs` as a formula.
    pub fn eq(lhs: impl Into<LinearExpr>, rhs: impl Into<LinearExpr>) -> Formula {
        Formula::Atom(Constraint::eq(lhs.into(), rhs.into()))
    }

    /// `lhs ≥ rhs` as a formula.
    pub fn ge(lhs: impl Into<LinearExpr>, rhs: impl Into<LinearExpr>) -> Formula {
        Formula::Atom(Constraint::ge(lhs.into(), rhs.into()))
    }

    /// `lhs ≤ rhs` as a formula.
    pub fn le(lhs: impl Into<LinearExpr>, rhs: impl Into<LinearExpr>) -> Formula {
        Formula::Atom(Constraint::le(lhs.into(), rhs.into()))
    }

    /// Conjunction, flattening nested conjunctions and short-circuiting
    /// constants.
    pub fn and(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::True,
            1 => flat.into_iter().next().expect("len checked"),
            _ => Formula::And(flat),
        }
    }

    /// Disjunction, flattening nested disjunctions and short-circuiting
    /// constants.
    pub fn or(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::False,
            1 => flat.into_iter().next().expect("len checked"),
            _ => Formula::Or(flat),
        }
    }

    /// Negation.
    // An associated constructor like `and`/`or` (used as `Formula::not`),
    // not an `impl Not` operator on an existing value.
    #[allow(clippy::should_implement_trait)]
    pub fn not(inner: Formula) -> Formula {
        match inner {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(f) => *f,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Whether the formula holds under a total assignment (quantifier-free
    /// evaluation; used for verification of solver models and in tests).
    pub fn eval(&self, assignment: &[u64]) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(c) => c.holds(assignment),
            Formula::And(parts) => parts.iter().all(|p| p.eval(assignment)),
            Formula::Or(parts) => parts.iter().any(|p| p.eval(assignment)),
            Formula::Not(inner) => !inner.eval(assignment),
        }
    }

    /// The number of AST nodes; used for reporting formula sizes in the
    /// experiments.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 1,
            Formula::And(parts) | Formula::Or(parts) => {
                1 + parts.iter().map(Formula::size).sum::<usize>()
            }
            Formula::Not(inner) => 1 + inner.size(),
        }
    }

    /// Collect the variables occurring in the formula.
    pub fn variables(&self) -> Vec<Var> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_vars(&mut out);
        out.into_iter().collect()
    }

    fn collect_vars(&self, out: &mut std::collections::BTreeSet<Var>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(Constraint::Ge0(e)) | Formula::Atom(Constraint::Eq0(e)) => {
                for (v, _) in e.terms() {
                    out.insert(v);
                }
            }
            Formula::And(parts) | Formula::Or(parts) => {
                for p in parts {
                    p.collect_vars(out);
                }
            }
            Formula::Not(inner) => inner.collect_vars(out),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "⊤"),
            Formula::False => write!(f, "⊥"),
            Formula::Atom(c) => write!(f, "{c}"),
            Formula::And(parts) => {
                let body: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", body.join(" ∧ "))
            }
            Formula::Or(parts) => {
                let body: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", body.join(" ∨ "))
            }
            Formula::Not(inner) => write!(f, "¬{inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_expr_arithmetic() {
        let mut pool = VarPool::new();
        let x = pool.fresh_named("x");
        let y = pool.fresh_named("y");
        let e = LinearExpr::term(x, 2)
            .add(&LinearExpr::var(y))
            .add(&LinearExpr::constant(3));
        assert_eq!(e.eval(&[1, 4]), 2 + 4 + 3);
        assert_eq!(e.coeff(x), 2);
        assert_eq!(e.coeff(y), 1);
        let z = e.clone().sub(&LinearExpr::term(x, 2));
        assert_eq!(z.coeff(x), 0);
        assert_eq!(z.arity(), 1);
        assert_eq!(e.clone().neg().eval(&[1, 4]), -9);
        assert_eq!(e.scale(2).eval(&[1, 4]), 18);
    }

    #[test]
    fn constraints_and_eval() {
        let mut pool = VarPool::new();
        let x = pool.fresh_named("x");
        let c = Constraint::ge(LinearExpr::var(x), LinearExpr::constant(3));
        assert!(!c.holds(&[2]));
        assert!(c.holds(&[3]));
        let e = Constraint::eq(LinearExpr::var(x), LinearExpr::constant(3));
        assert!(e.holds(&[3]));
        assert!(!e.holds(&[4]));
    }

    #[test]
    fn formula_simplification() {
        let mut pool = VarPool::new();
        let x = pool.fresh_named("x");
        assert_eq!(Formula::and(vec![]), Formula::True);
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(
            Formula::and(vec![Formula::True, Formula::False, Formula::eq(x, 1)]),
            Formula::False
        );
        assert_eq!(
            Formula::or(vec![Formula::False, Formula::True]),
            Formula::True
        );
        assert_eq!(
            Formula::not(Formula::not(Formula::eq(x, 1))),
            Formula::eq(x, 1)
        );
    }

    #[test]
    fn formula_eval_and_vars() {
        let mut pool = VarPool::new();
        let x = pool.fresh_named("x");
        let y = pool.fresh_named("y");
        // (x = 2 ∧ y ≥ 1) ∨ ¬(x ≤ 5)
        let f = Formula::or(vec![
            Formula::and(vec![Formula::eq(x, 2), Formula::ge(y, 1)]),
            Formula::not(Formula::le(x, 5)),
        ]);
        assert!(f.eval(&[2, 1]));
        assert!(!f.eval(&[2, 0]));
        assert!(f.eval(&[9, 0]));
        assert_eq!(f.variables(), vec![x, y]);
        assert!(f.size() >= 5);
    }

    #[test]
    fn var_pool_bounds_and_names() {
        let mut pool = VarPool::new();
        let x = pool.fresh_bounded("x", 7);
        let y = pool.fresh();
        assert_eq!(pool.bound(x), Some(7));
        assert_eq!(pool.bound(y), None);
        pool.set_bound(y, 3);
        assert_eq!(pool.bound(y), Some(3));
        assert_eq!(pool.name(x), "x");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn from_impls() {
        let mut pool = VarPool::new();
        let x = pool.fresh();
        let f = Formula::eq(x, 3);
        assert!(f.eval(&[3]));
        let g = Formula::ge(LinearExpr::var(x), LinearExpr::constant(-1));
        assert!(g.eval(&[0]));
    }
}
