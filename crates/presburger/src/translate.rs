//! Translation of regular bag expressions into Presburger formulas.
//!
//! This implements the construction `ψ_E(x̄, n)` of Section 6 of the paper:
//! given an ambient alphabet `Δ` and a vector `x̄` of terms (one per symbol),
//! `ψ_E(x̄, n)` holds exactly when the bag with Parikh vector `x̄` belongs to
//! `L(E)ⁿ`.
//!
//! One deviation from the displayed formula in the paper: for the repetition
//! case `E^[k;ℓ]` the paper writes `∃m. k ≤ m ≤ ℓ ∧ ψ_E(x̄, m)`, which is the
//! correct unfolding only for `n = 1` (the only way the formula is used at the
//! top level there). We scale the bounds by `n` (`k·n ≤ m ≤ ℓ·n`), which is
//! the general identity `L(E^I)ⁿ = ⋃_{m ∈ n·I} L(E)^m` and agrees with the
//! paper's version when `n = 1`.

use std::collections::BTreeMap;

use shapex_rbe::{Bag, Rbe};

use crate::formula::{Formula, LinearExpr, VarPool};
use crate::solver::{Bounds, SolveResult, Solver};

/// A Parikh vector: one linear term per symbol of the ambient alphabet.
/// Constants describe a known bag; variables describe an unknown one.
pub type ParikhVec<S> = BTreeMap<S, LinearExpr>;

/// Builds `ψ_E` formulas, allocating the auxiliary split variables from a
/// shared [`VarPool`].
#[derive(Debug)]
pub struct PsiBuilder<'p> {
    pool: &'p mut VarPool,
    split_bound: u64,
}

impl<'p> PsiBuilder<'p> {
    /// A builder whose auxiliary variables (bag splits and iteration counts)
    /// are bounded by `split_bound`. For membership of a known bag, a bound of
    /// `bag.total() + largest finite interval constant + 1` is always
    /// sufficient.
    pub fn new(pool: &'p mut VarPool, split_bound: u64) -> PsiBuilder<'p> {
        PsiBuilder { pool, split_bound }
    }

    /// The formula `ψ_E(x̄, n)`: the bag described by `x̄` belongs to `L(E)ⁿ`.
    ///
    /// Symbols of `E` that are missing from `x̄` are treated as having count
    /// zero (they can never occur in the ambient alphabet).
    pub fn psi<S: Ord + Clone>(
        &mut self,
        expr: &Rbe<S>,
        xs: &ParikhVec<S>,
        n: &LinearExpr,
    ) -> Formula {
        match expr {
            Rbe::Epsilon => all_zero(xs),
            Rbe::Symbol(a) => {
                let mut parts = Vec::with_capacity(xs.len());
                match xs.get(a) {
                    Some(xa) => parts.push(Formula::eq(xa.clone(), n.clone())),
                    // The symbol cannot occur at all: only n = 0 and the empty
                    // bag remain.
                    None => parts.push(Formula::eq(n.clone(), LinearExpr::constant(0))),
                }
                for (b, xb) in xs {
                    if Some(b) != Some(a) && b != a {
                        parts.push(Formula::eq(xb.clone(), LinearExpr::constant(0)));
                    }
                }
                Formula::and(parts)
            }
            Rbe::Concat(factors) => self.split(factors, xs, |builder, factor, sub_xs| {
                builder.psi(factor, sub_xs, n)
            }),
            Rbe::Disj(choices) => {
                // n = n₁ + … + n_k with fresh counts per disjunct.
                let counts: Vec<LinearExpr> = choices
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        LinearExpr::var(
                            self.pool
                                .fresh_bounded(format!("n_disj{i}"), self.split_bound),
                        )
                    })
                    .collect();
                let sum = counts
                    .iter()
                    .fold(LinearExpr::constant(0), |acc, c| acc.add(c));
                let count_constraint = Formula::eq(n.clone(), sum);
                let body = self.split(choices, xs, |builder, choice, sub_xs| {
                    // Recover this disjunct's index to pair it with its count.
                    // `split` calls us in order, so track via pointer equality.
                    let idx = choices
                        .iter()
                        .position(|c| std::ptr::eq(c, choice))
                        .expect("choice comes from the slice");
                    builder.psi(choice, sub_xs, &counts[idx])
                });
                Formula::and(vec![count_constraint, body])
            }
            Rbe::Repeat(inner, interval) => {
                let zero_case = Formula::and(vec![
                    Formula::eq(n.clone(), LinearExpr::constant(0)),
                    all_zero(xs),
                ]);
                let m = LinearExpr::var(self.pool.fresh_bounded("m_repeat", self.split_bound));
                let mut positive = vec![Formula::ge(n.clone(), LinearExpr::constant(1))];
                // k·n ≤ m ≤ ℓ·n (no upper constraint when ℓ = ∞).
                positive.push(Formula::ge(
                    m.clone(),
                    n.clone().scale(interval.lo() as i64),
                ));
                if let Some(hi) = interval.hi() {
                    positive.push(Formula::le(m.clone(), n.clone().scale(hi as i64)));
                }
                positive.push(self.psi(inner, xs, &m));
                Formula::or(vec![zero_case, Formula::and(positive)])
            }
        }
    }

    /// Split the Parikh vector `x̄` into one fresh vector per part
    /// (`x̄ = x̄₁ + … + x̄_k`) and conjoin `body(part_i, x̄_i)` for every part.
    fn split<S: Ord + Clone>(
        &mut self,
        parts: &[Rbe<S>],
        xs: &ParikhVec<S>,
        mut body: impl FnMut(&mut Self, &Rbe<S>, &ParikhVec<S>) -> Formula,
    ) -> Formula {
        if parts.is_empty() {
            return all_zero(xs);
        }
        if parts.len() == 1 {
            return body(self, &parts[0], xs);
        }
        let mut sub_vectors: Vec<ParikhVec<S>> = Vec::with_capacity(parts.len());
        for (i, _) in parts.iter().enumerate() {
            let mut sub = ParikhVec::new();
            for symbol in xs.keys() {
                let v = self
                    .pool
                    .fresh_bounded(format!("split{i}"), self.split_bound);
                sub.insert(symbol.clone(), LinearExpr::var(v));
            }
            sub_vectors.push(sub);
        }
        let mut conjuncts = Vec::new();
        // Sum constraints: x_a = Σ_i x_{i,a}.
        for (symbol, total) in xs {
            let sum = sub_vectors
                .iter()
                .map(|sub| sub[symbol].clone())
                .fold(LinearExpr::constant(0), |acc, e| acc.add(&e));
            conjuncts.push(Formula::eq(total.clone(), sum));
        }
        for (part, sub) in parts.iter().zip(sub_vectors.iter()) {
            conjuncts.push(body(self, part, sub));
        }
        Formula::and(conjuncts)
    }
}

fn all_zero<S: Ord>(xs: &ParikhVec<S>) -> Formula {
    Formula::and(
        xs.values()
            .map(|x| Formula::eq(x.clone(), LinearExpr::constant(0)))
            .collect(),
    )
}

/// Convenience wrapper for [`PsiBuilder::psi`] starting from an empty pool;
/// returns the formula together with the pool holding its auxiliary variables.
pub fn psi<S: Ord + Clone>(
    expr: &Rbe<S>,
    xs: &ParikhVec<S>,
    n: &LinearExpr,
    split_bound: u64,
) -> (Formula, VarPool) {
    let mut pool = VarPool::new();
    let formula = PsiBuilder::new(&mut pool, split_bound).psi(expr, xs, n);
    (formula, pool)
}

/// The largest finite constant appearing in the intervals of the expression;
/// used to derive sufficient variable bounds for membership queries.
pub fn max_interval_constant<S>(expr: &Rbe<S>) -> u64 {
    match expr {
        Rbe::Epsilon | Rbe::Symbol(_) => 0,
        Rbe::Disj(parts) | Rbe::Concat(parts) => {
            parts.iter().map(max_interval_constant).max().unwrap_or(0)
        }
        Rbe::Repeat(inner, interval) => {
            let own = interval.hi().unwrap_or(interval.lo()).max(interval.lo());
            own.max(max_interval_constant(inner))
        }
    }
}

/// NP membership test for arbitrary regular bag expressions via the Presburger
/// translation: `bag ∈ L(expr)`?
///
/// This is the general-purpose counterpart of the polynomial procedures in
/// `shapex-rbe`; sound and complete for every RBE.
pub fn rbe_member<S: Ord + Clone>(bag: &Bag<S>, expr: &Rbe<S>) -> bool {
    // Symbols outside the expression's alphabet can never be produced.
    let alphabet = expr.alphabet();
    if bag.symbols().any(|s| !alphabet.contains(s)) {
        return false;
    }
    let bound = bag.total() + max_interval_constant(expr) + 1;
    let xs: ParikhVec<S> = alphabet
        .iter()
        .map(|s| (s.clone(), LinearExpr::constant(bag.count(s) as i64)))
        .collect();
    let mut pool = VarPool::new();
    let formula = PsiBuilder::new(&mut pool, bound).psi(expr, &xs, &LinearExpr::constant(1));
    let solver = Solver::new(Bounds::uniform(bound));
    match solver.solve(&formula, &pool) {
        SolveResult::Sat(_) => true,
        SolveResult::Unsat => false,
        SolveResult::Unknown => {
            // The default budget is far beyond what these formulas need; treat
            // exhaustion as a hard error rather than guessing.
            panic!("Presburger solver budget exhausted during RBE membership")
        }
    }
}

/// Decide whether `L(e1) ∩ L(e2) = ∅` restricted to bags over the union of the
/// two alphabets, with all counts bounded by `bound` (the paper's
/// `ψ_{E1∩E2} = ψ_{E1} ∧ ψ_{E2}`).
pub fn intersection_nonempty<S: Ord + Clone>(e1: &Rbe<S>, e2: &Rbe<S>, bound: u64) -> bool {
    let mut alphabet = e1.alphabet();
    alphabet.extend(e2.alphabet());
    let mut pool = VarPool::new();
    let xs: ParikhVec<S> = alphabet
        .iter()
        .map(|s| {
            let v = pool.fresh_bounded("x".to_string(), bound);
            (s.clone(), LinearExpr::var(v))
        })
        .collect();
    let mut builder = PsiBuilder::new(&mut pool, bound);
    let one = LinearExpr::constant(1);
    let f1 = builder.psi(e1, &xs, &one);
    let f2 = builder.psi(e2, &xs, &one);
    let formula = Formula::and(vec![f1, f2]);
    Solver::new(Bounds::uniform(bound)).is_sat(&formula, &pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_rbe::membership::naive_member;
    use shapex_rbe::Interval;

    fn bag(symbols: &[&'static str]) -> Bag<&'static str> {
        Bag::from_symbols(symbols.iter().copied())
    }

    #[test]
    fn member_agrees_with_oracle_on_rbe0() {
        // a || b? || c*
        let e = Rbe::concat(vec![
            Rbe::symbol("a"),
            Rbe::opt(Rbe::symbol("b")),
            Rbe::star(Rbe::symbol("c")),
        ]);
        for candidate in [
            bag(&[]),
            bag(&["a"]),
            bag(&["a", "b"]),
            bag(&["a", "b", "b"]),
            bag(&["a", "c", "c", "c"]),
            bag(&["c"]),
        ] {
            assert_eq!(
                rbe_member(&candidate, &e),
                naive_member(&candidate, &e),
                "disagreement on {candidate}"
            );
        }
    }

    #[test]
    fn member_agrees_with_oracle_on_disjunction() {
        // (a || b) | (a || c)
        let e = Rbe::disj(vec![
            Rbe::concat(vec![Rbe::symbol("a"), Rbe::symbol("b")]),
            Rbe::concat(vec![Rbe::symbol("a"), Rbe::symbol("c")]),
        ]);
        for candidate in [
            bag(&["a", "b"]),
            bag(&["a", "c"]),
            bag(&["a"]),
            bag(&["a", "b", "c"]),
            bag(&["b", "c"]),
            bag(&[]),
        ] {
            assert_eq!(
                rbe_member(&candidate, &e),
                naive_member(&candidate, &e),
                "disagreement on {candidate}"
            );
        }
    }

    #[test]
    fn member_agrees_with_oracle_on_nested_repetition() {
        // ((a | b)^[2;2])^[1;2]: two or four symbols drawn from {a, b}.
        let e = Rbe::repeat(
            Rbe::repeat(
                Rbe::disj(vec![Rbe::symbol("a"), Rbe::symbol("b")]),
                Interval::exactly(2),
            ),
            Interval::bounded(1, 2),
        );
        for candidate in [
            bag(&[]),
            bag(&["a"]),
            bag(&["a", "b"]),
            bag(&["a", "a", "b"]),
            bag(&["a", "a", "b", "b"]),
            bag(&["a", "a", "a", "a", "b"]),
        ] {
            assert_eq!(
                rbe_member(&candidate, &e),
                naive_member(&candidate, &e),
                "disagreement on {candidate}"
            );
        }
    }

    #[test]
    fn member_handles_multi_occurrence_symbols() {
        // a || a+  — at least two a's.
        let e = Rbe::concat(vec![Rbe::symbol("a"), Rbe::plus(Rbe::symbol("a"))]);
        assert!(!rbe_member(&bag(&["a"]), &e));
        assert!(rbe_member(&bag(&["a", "a"]), &e));
        assert!(rbe_member(&bag(&["a", "a", "a", "a"]), &e));
        assert!(!rbe_member(&bag(&["a", "a", "b"]), &e));
    }

    #[test]
    fn repetition_scaling_bug_regression() {
        // (a^[1;1])^[2;2] = exactly two a's. The paper's literal formula would
        // also accept a single `a`; the scaled bounds must not.
        let e = Rbe::repeat(
            Rbe::repeat(Rbe::symbol("a"), Interval::exactly(1)),
            Interval::exactly(2),
        );
        assert!(!rbe_member(&bag(&["a"]), &e));
        assert!(rbe_member(&bag(&["a", "a"]), &e));
        assert!(!rbe_member(&bag(&["a", "a", "a"]), &e));
    }

    #[test]
    fn intersection_emptiness() {
        // L(a || b) ∩ L(a | b) = ∅ (two symbols vs one).
        let both = Rbe::concat(vec![Rbe::symbol("a"), Rbe::symbol("b")]);
        let either = Rbe::disj(vec![Rbe::symbol("a"), Rbe::symbol("b")]);
        assert!(!intersection_nonempty(&both, &either, 8));
        // L(a?) ∩ L(a | b) = {a} ≠ ∅.
        let opt_a = Rbe::opt(Rbe::symbol("a"));
        assert!(intersection_nonempty(&opt_a, &either, 8));
        // Identical languages intersect.
        assert!(intersection_nonempty(&both, &both, 8));
    }

    #[test]
    fn psi_formula_is_reusable_with_variables() {
        // ψ_{a||b?}(x̄, 1) with x_a, x_b as variables: satisfiable with x_a = 1.
        let e = Rbe::concat(vec![Rbe::symbol("a"), Rbe::opt(Rbe::symbol("b"))]);
        let mut pool = VarPool::new();
        let xa = pool.fresh_bounded("xa", 4);
        let xb = pool.fresh_bounded("xb", 4);
        let xs: ParikhVec<&str> = [("a", LinearExpr::var(xa)), ("b", LinearExpr::var(xb))]
            .into_iter()
            .collect();
        let f = PsiBuilder::new(&mut pool, 8).psi(&e, &xs, &LinearExpr::constant(1));
        let result = Solver::new(Bounds::uniform(8)).solve(&f, &pool);
        let model = result.model().expect("satisfiable");
        assert_eq!(model[xa.0 as usize], 1);
        assert!(model[xb.0 as usize] <= 1);
    }
}
