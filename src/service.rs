//! A long-lived, multi-tenant containment service wrapping a shared
//! [`ContainmentEngine`].
//!
//! The engine is the seam a service wraps: every query method takes `&self`
//! over concurrent caches, so one engine behind an [`Arc`] serves any number
//! of clients, amortizing shape graphs, unfolding pools, and validation
//! verdicts across all of their queries. [`ContainmentService`] packages
//! that seam as a production-shaped request/response protocol:
//!
//! * **Tenant-scoped registries over one shared engine.** Every request
//!   carries a [`TenantId`] ([`TenantId::DEFAULT`] for single-tenant use;
//!   [`ContainmentService::create_tenant`] mints more). Registration is the
//!   upload endpoint: a tenant submits a [`Schema`] once
//!   ([`ServiceRequest::Register`]) and holds the returned [`SchemaId`] —
//!   structurally identical schemas intern onto one engine entry and share
//!   every cache *across* tenants, but a handle is only usable by tenants
//!   that registered it themselves; anyone else gets
//!   [`ServiceError::WrongTenant`], so one tenant cannot probe another's
//!   schemas by guessing handles.
//! * **Typed errors.** [`ContainmentService::handle`] returns
//!   `Result<ServiceResponse, ServiceError>`: unknown handles, foreign
//!   tenants, and overload are data, not strings. The serve loop folds
//!   errors back into [`ServiceResponse::Error`] (via `From`) for clients
//!   that want a plain response stream.
//! * **Bounded queue with explicit backpressure.** A
//!   [`ServiceClient`] from [`ContainmentService::connect`] talks to the
//!   serve loop over a bounded channel; when the queue is full,
//!   [`ServiceClient::call`] fails *fast* with [`ServiceError::Overloaded`]
//!   (counted in the stats) instead of queuing unboundedly —
//!   [`ServiceClient::call_blocking`] opts into waiting instead.
//! * **A metrics surface.** [`ServiceRequest::Stats`] answers a
//!   [`ServiceStats`]: the engine's cache/memory counters (evictions and
//!   resident bytes included, when the engine runs under a
//!   [`EngineOptions::cache_budget`]), the tenant count, the rejected
//!   count, and a log-spaced latency histogram
//!   ([`crate::metrics::LatencySnapshot`]) of every request this service
//!   answered. Its `Display` rendering is the line to log or scrape.
//!
//! The protocol stays transport-agnostic: `handle` maps one request to one
//! response and is safe from any number of threads;
//! [`ContainmentService::serve`] runs it as a blocking loop over a channel
//! of [`ServiceEnvelope`]s — the shape `examples/containment_service.rs`
//! demonstrates with one server thread, several tenants, and a deliberate
//! overload burst. Because the service is [`Clone`] (it clones the inner
//! [`Arc`]s), the same engine can sit behind several server threads at once.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, RwLock};
use std::time::Instant;

use shapex_core::engine::{
    ContainmentEngine, ContainmentMatrix, EngineOptions, EngineStats, SchemaId,
};
use shapex_core::Containment;
use shapex_shex::Schema;

use crate::metrics::{LatencyHistogram, LatencySnapshot};

// One service handle is shared across server and client threads.
shapex_graph::assert_send_sync!(
    ContainmentService,
    ServiceClient,
    ServiceRequest,
    ServiceResponse,
    ServiceError,
    ServiceEnvelope,
    TenantId
);

/// A tenant of a [`ContainmentService`]: an isolation scope for schema
/// handles. Mint one per client organisation with
/// [`ContainmentService::create_tenant`]; handles returned to one tenant
/// are rejected ([`ServiceError::WrongTenant`]) when presented by another.
/// Like [`SchemaId`], a `TenantId` is only meaningful for the service that
/// issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(u32);

impl TenantId {
    /// The tenant every service starts with — single-tenant deployments
    /// never need another.
    pub const DEFAULT: TenantId = TenantId(0);

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// A request to a [`ContainmentService`].
///
/// The enum is the service's wire format: everything a client can ask for,
/// self-contained (schemas travel by value on registration, by [`SchemaId`]
/// handle afterwards). The [`TenantId`] travels next to the request — in
/// [`ContainmentService::handle`]'s signature and in the
/// [`ServiceEnvelope`] — not inside it, so requests themselves stay
/// tenant-agnostic.
#[derive(Debug, Clone)]
pub enum ServiceRequest {
    /// Register a schema under the requesting tenant, interning
    /// structurally identical submissions onto one engine entry. Answered
    /// with [`ServiceResponse::Registered`]. Boxed: a `Schema` is hundreds
    /// of bytes, and requests travel through queues sized for the smallest
    /// variants.
    Register(Box<Schema>),
    /// Decide `L(h) ⊆ L(k)` for two handles of the requesting tenant.
    /// Answered with [`ServiceResponse::Answer`].
    Check {
        /// The candidate sub-schema.
        h: SchemaId,
        /// The candidate super-schema.
        k: SchemaId,
    },
    /// The full pairwise containment matrix over handles of the requesting
    /// tenant. Answered with [`ServiceResponse::Matrix`].
    Matrix(Vec<SchemaId>),
    /// Snapshot the service's metrics. Answered with
    /// [`ServiceResponse::Stats`].
    Stats,
}

/// A response from a [`ContainmentService`], one per [`ServiceRequest`].
#[derive(Debug, Clone)]
pub enum ServiceResponse {
    /// The handle for a registered schema.
    Registered(SchemaId),
    /// The answer to a [`ServiceRequest::Check`].
    Answer(Containment),
    /// The answer to a [`ServiceRequest::Matrix`].
    Matrix(ContainmentMatrix),
    /// The metrics snapshot for a [`ServiceRequest::Stats`]. Boxed: the
    /// snapshot (histogram included) is far larger than the other variants.
    Stats(Box<ServiceStats>),
    /// A folded-in [`ServiceError`], produced by the `From` impl — the
    /// serve loop sends this when `handle` fails, so response streams stay
    /// uniform. Direct callers of [`ContainmentService::handle`] get the
    /// error on the `Err` side instead and never see this variant.
    Error(ServiceError),
}

/// Why a [`ContainmentService`] refused a request. `#[non_exhaustive]`:
/// future services may refuse for further reasons (quotas, timeouts), so
/// downstream matches need a catch-all arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The handle was never issued by this service's engine.
    UnknownHandle {
        /// The offending handle.
        id: SchemaId,
        /// How many schemas the engine has registered (the valid range).
        registered: usize,
    },
    /// The handle exists but belongs to other tenants — the requesting
    /// tenant never registered that schema.
    WrongTenant {
        /// The offending handle.
        id: SchemaId,
        /// The requesting tenant.
        tenant: TenantId,
    },
    /// The [`TenantId`] was never issued by this service.
    UnknownTenant(TenantId),
    /// The bounded request queue is full; retry later or shed load. The
    /// rejection is counted in [`ServiceStats::rejected`].
    Overloaded,
    /// The serve loop (or the reply channel) hung up before answering.
    Disconnected,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownHandle { id, registered } => write!(
                f,
                "unknown schema handle {id:?} (this service has {registered} registered)"
            ),
            ServiceError::WrongTenant { id, tenant } => {
                write!(f, "schema handle {id:?} is not registered to {tenant}")
            }
            ServiceError::UnknownTenant(tenant) => {
                write!(f, "{tenant} was never issued by this service")
            }
            ServiceError::Overloaded => write!(f, "request queue is full; retry later"),
            ServiceError::Disconnected => write!(f, "service hung up before answering"),
        }
    }
}

impl Error for ServiceError {}

impl From<ServiceError> for ServiceResponse {
    /// Fold an error into the response stream — what
    /// [`ContainmentService::serve`] does, so channel clients see one
    /// uniform `ServiceResponse` type.
    fn from(error: ServiceError) -> ServiceResponse {
        ServiceResponse::Error(error)
    }
}

/// One queued request: who asks, what they ask, and the channel the answer
/// goes back on — the envelope [`ContainmentService::serve`] consumes.
/// Built by [`ServiceClient::call`]; construct it directly only when
/// driving `serve` over a hand-rolled channel.
#[derive(Debug)]
pub struct ServiceEnvelope {
    /// The requesting tenant.
    pub tenant: TenantId,
    /// The request itself.
    pub request: ServiceRequest,
    /// Where the response goes. Errors arrive folded in as
    /// [`ServiceResponse::Error`].
    pub reply: mpsc::Sender<ServiceResponse>,
}

/// The full metrics surface of a [`ContainmentService`]: the engine's
/// cache/memory counters plus the service-level tenancy, backpressure, and
/// latency numbers. Snapshot via [`ServiceRequest::Stats`] or
/// [`ContainmentService::stats`]; the `Display` rendering is the log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// The engine snapshot: hit ratios, resident bytes, evictions.
    pub engine: EngineStats,
    /// Tenants issued (the default tenant included).
    pub tenants: usize,
    /// Requests rejected with [`ServiceError::Overloaded`] by clients of
    /// this service's bounded queues.
    pub rejected: u64,
    /// The latency distribution over every request this service answered.
    pub latency: LatencySnapshot,
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}; {} tenants; {} rejected; latency: {}",
            self.engine, self.tenants, self.rejected, self.latency
        )
    }
}

/// Shared service-level state behind the [`Arc`] every clone and client
/// holds: the tenant scopes and the metrics the engine cannot know about.
#[derive(Debug)]
struct ServiceState {
    /// `tenants[t]` = the handles tenant `t` registered. Read-mostly: every
    /// query takes the read lock; only registration and tenant creation
    /// write.
    tenants: RwLock<Vec<HashSet<SchemaId>>>,
    /// Requests rejected with [`ServiceError::Overloaded`].
    rejected: AtomicU64,
    /// Latency of every answered request.
    latency: LatencyHistogram,
}

/// A long-lived, multi-tenant containment session behind a
/// request/response protocol; see the [module docs](self). Cloning is cheap
/// (two [`Arc`] bumps) and clones share the engine and all service state,
/// so one service can be driven from many threads.
#[derive(Debug, Clone)]
pub struct ContainmentService {
    engine: Arc<ContainmentEngine>,
    state: Arc<ServiceState>,
}

impl Default for ContainmentService {
    fn default() -> Self {
        ContainmentService::new()
    }
}

impl ContainmentService {
    /// A service over a fresh engine with default options.
    pub fn new() -> ContainmentService {
        ContainmentService::with_options(EngineOptions::default())
    }

    /// A service over a fresh engine with the given options. Production
    /// deployments set [`EngineOptions::cache_budget`] here — a service
    /// lives long enough for unbounded caches to matter.
    pub fn with_options(options: EngineOptions) -> ContainmentService {
        ContainmentService::from_engine(Arc::new(ContainmentEngine::with_options(options)))
    }

    /// Wrap an existing shared engine — e.g. one that local code also
    /// queries directly while the service exposes it to other threads.
    pub fn from_engine(engine: Arc<ContainmentEngine>) -> ContainmentService {
        ContainmentService {
            engine,
            state: Arc::new(ServiceState {
                tenants: RwLock::new(vec![HashSet::new()]),
                rejected: AtomicU64::new(0),
                latency: LatencyHistogram::new(),
            }),
        }
    }

    /// The shared engine behind the service.
    pub fn engine(&self) -> &Arc<ContainmentEngine> {
        &self.engine
    }

    /// Mint a new, empty tenant scope.
    pub fn create_tenant(&self) -> TenantId {
        let mut tenants = self.state.tenants.write().expect("tenant lock");
        let id = TenantId(tenants.len() as u32);
        tenants.push(HashSet::new());
        id
    }

    /// Tenants issued so far (the default tenant included).
    pub fn tenant_count(&self) -> usize {
        self.state.tenants.read().expect("tenant lock").len()
    }

    /// The service's metrics snapshot (what [`ServiceRequest::Stats`]
    /// answers).
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            engine: self.engine.stats(),
            tenants: self.tenant_count(),
            rejected: self.state.rejected.load(Ordering::Relaxed),
            latency: self.state.latency.snapshot(),
        }
    }

    /// Answer one request on behalf of a tenant. Pure dispatch onto the
    /// engine plus the tenant bookkeeping: safe to call from any number of
    /// threads at once, with or without
    /// [`serve`](ContainmentService::serve) running elsewhere. Every call —
    /// errors included — is recorded in the latency histogram.
    pub fn handle(
        &self,
        tenant: TenantId,
        request: ServiceRequest,
    ) -> Result<ServiceResponse, ServiceError> {
        let started = Instant::now();
        let response = self.dispatch(tenant, request);
        self.state.latency.record(started.elapsed());
        response
    }

    fn dispatch(
        &self,
        tenant: TenantId,
        request: ServiceRequest,
    ) -> Result<ServiceResponse, ServiceError> {
        match request {
            ServiceRequest::Register(schema) => {
                // Existence check before the engine mutates anything.
                if tenant.index() >= self.tenant_count() {
                    return Err(ServiceError::UnknownTenant(tenant));
                }
                let id = self.engine.register(&schema);
                self.state.tenants.write().expect("tenant lock")[tenant.index()].insert(id);
                Ok(ServiceResponse::Registered(id))
            }
            ServiceRequest::Check { h, k } => {
                self.checked(tenant, h)?;
                self.checked(tenant, k)?;
                Ok(ServiceResponse::Answer(self.engine.check_ids(h, k)))
            }
            ServiceRequest::Matrix(ids) => {
                for &id in &ids {
                    self.checked(tenant, id)?;
                }
                Ok(ServiceResponse::Matrix(self.engine.check_matrix_ids(&ids)))
            }
            ServiceRequest::Stats => Ok(ServiceResponse::Stats(Box::new(self.stats()))),
        }
    }

    /// A client onto this service's serve loop over a *bounded* queue of
    /// `capacity` in-flight requests, plus the receiver to hand to
    /// [`serve`](ContainmentService::serve) (on a dedicated thread).
    /// Clients are cheap to clone; clones share the queue and the tenant.
    pub fn connect(
        &self,
        tenant: TenantId,
        capacity: usize,
    ) -> (ServiceClient, mpsc::Receiver<ServiceEnvelope>) {
        let (requests, receiver) = mpsc::sync_channel(capacity.max(1));
        (
            ServiceClient {
                requests,
                tenant,
                state: self.state.clone(),
            },
            receiver,
        )
    }

    /// The synchronous request loop: answer every envelope until all
    /// request senders are dropped, then return. Errors are folded into
    /// [`ServiceResponse::Error`]; a client that hung up before its
    /// response arrived is skipped silently. Run it on a dedicated thread
    /// (or several — clones share the engine) and hand clients the sender
    /// side of the channel.
    pub fn serve(&self, requests: mpsc::Receiver<ServiceEnvelope>) {
        for ServiceEnvelope {
            tenant,
            request,
            reply,
        } in requests
        {
            let response = match self.handle(tenant, request) {
                Ok(response) => response,
                Err(error) => ServiceResponse::from(error),
            };
            let _ = reply.send(response);
        }
    }

    /// Range-check a client-supplied handle, then scope-check it against
    /// the requesting tenant.
    fn checked(&self, tenant: TenantId, id: SchemaId) -> Result<(), ServiceError> {
        if !self.engine.is_registered(id) {
            return Err(ServiceError::UnknownHandle {
                id,
                registered: self.engine.schema_count(),
            });
        }
        let tenants = self.state.tenants.read().expect("tenant lock");
        let scope = tenants
            .get(tenant.index())
            .ok_or(ServiceError::UnknownTenant(tenant))?;
        if scope.contains(&id) {
            Ok(())
        } else {
            Err(ServiceError::WrongTenant { id, tenant })
        }
    }
}

/// A tenant's handle onto a serving [`ContainmentService`], from
/// [`ContainmentService::connect`]: requests go through the bounded queue,
/// responses come back on a per-call reply channel. [`ServiceClient::call`]
/// rejects immediately with [`ServiceError::Overloaded`] when the queue is
/// full — backpressure as an explicit, typed signal;
/// [`ServiceClient::call_blocking`] waits for a slot instead.
#[derive(Debug, Clone)]
pub struct ServiceClient {
    requests: mpsc::SyncSender<ServiceEnvelope>,
    tenant: TenantId,
    state: Arc<ServiceState>,
}

impl ServiceClient {
    /// The tenant this client requests as.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The raw envelope sender behind this client — for hand-rolled
    /// transports that build [`ServiceEnvelope`]s themselves. Sends count
    /// against the same bounded capacity as [`ServiceClient::call`].
    pub fn sender(&self) -> &mpsc::SyncSender<ServiceEnvelope> {
        &self.requests
    }

    /// Send one request and wait for its response, failing *fast* with
    /// [`ServiceError::Overloaded`] (counted in the stats) when the queue
    /// is full. Service-side errors come back on the `Err` side, unfolded
    /// from the response stream.
    pub fn call(&self, request: ServiceRequest) -> Result<ServiceResponse, ServiceError> {
        let (reply, responses) = mpsc::channel();
        let envelope = ServiceEnvelope {
            tenant: self.tenant,
            request,
            reply,
        };
        match self.requests.try_send(envelope) {
            Ok(()) => {}
            Err(mpsc::TrySendError::Full(_)) => {
                self.state.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::Overloaded);
            }
            Err(mpsc::TrySendError::Disconnected(_)) => return Err(ServiceError::Disconnected),
        }
        Self::unfold(responses.recv().map_err(|_| ServiceError::Disconnected)?)
    }

    /// Like [`ServiceClient::call`], but block for a queue slot instead of
    /// rejecting — for batch producers that prefer waiting over shedding.
    pub fn call_blocking(&self, request: ServiceRequest) -> Result<ServiceResponse, ServiceError> {
        let (reply, responses) = mpsc::channel();
        let envelope = ServiceEnvelope {
            tenant: self.tenant,
            request,
            reply,
        };
        self.requests
            .send(envelope)
            .map_err(|_| ServiceError::Disconnected)?;
        Self::unfold(responses.recv().map_err(|_| ServiceError::Disconnected)?)
    }

    /// Lift a folded [`ServiceResponse::Error`] back onto the `Err` side.
    fn unfold(response: ServiceResponse) -> Result<ServiceResponse, ServiceError> {
        match response {
            ServiceResponse::Error(error) => Err(error),
            other => Ok(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_shex::parse_schema;

    fn ids_of(service: &ContainmentService, tenant: TenantId, texts: &[&str]) -> Vec<SchemaId> {
        texts
            .iter()
            .map(|t| {
                let request = ServiceRequest::Register(Box::new(parse_schema(t).unwrap()));
                match service.handle(tenant, request) {
                    Ok(ServiceResponse::Registered(id)) => id,
                    other => panic!("expected Registered, got {other:?}"),
                }
            })
            .collect()
    }

    #[test]
    fn request_response_round_trip() {
        let service = ContainmentService::new();
        let ids = ids_of(
            &service,
            TenantId::DEFAULT,
            &["T -> p::L?\nL -> EMPTY\n", "T -> p::L*\nL -> EMPTY\n"],
        );
        match service.handle(
            TenantId::DEFAULT,
            ServiceRequest::Check {
                h: ids[0],
                k: ids[1],
            },
        ) {
            Ok(ServiceResponse::Answer(answer)) => {
                assert!(answer.is_contained(), "? widens to *")
            }
            other => panic!("expected Answer, got {other:?}"),
        }
        match service.handle(TenantId::DEFAULT, ServiceRequest::Matrix(ids.clone())) {
            Ok(ServiceResponse::Matrix(matrix)) => {
                assert_eq!(matrix.len(), 2);
                assert!(matrix[1][0].is_not_contained(), "* does not narrow to ?");
                assert_eq!(matrix.ids(), &ids[..]);
            }
            other => panic!("expected Matrix, got {other:?}"),
        }
        match service.handle(TenantId::DEFAULT, ServiceRequest::Stats) {
            Ok(ServiceResponse::Stats(stats)) => {
                assert_eq!(stats.engine.schemas, 2);
                assert_eq!(stats.tenants, 1);
                assert_eq!(stats.rejected, 0);
                assert!(stats.latency.count() >= 4, "every request is recorded");
                assert!(format!("{stats}").contains("latency"));
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn foreign_handles_get_an_error_not_a_panic() {
        let service = ContainmentService::new();
        let ids = ids_of(&service, TenantId::DEFAULT, &["T -> p::L?\nL -> EMPTY\n"]);
        let other = ContainmentService::new();
        let foreign = ids_of(
            &other,
            TenantId::DEFAULT,
            &["A -> q::B\nB -> EMPTY\n", "B -> EMPTY\n"],
        )[1];
        match service.handle(
            TenantId::DEFAULT,
            ServiceRequest::Check {
                h: ids[0],
                k: foreign,
            },
        ) {
            Err(ServiceError::UnknownHandle { registered, .. }) => assert_eq!(registered, 1),
            other => panic!("expected UnknownHandle, got {other:?}"),
        }
    }

    #[test]
    fn tenants_cannot_use_each_others_handles() {
        let service = ContainmentService::new();
        let blue = service.create_tenant();
        let green = service.create_tenant();
        assert_eq!(service.tenant_count(), 3, "default + two minted");
        let blue_ids = ids_of(
            &service,
            blue,
            &["T -> p::L?\nL -> EMPTY\n", "T -> p::L*\nL -> EMPTY\n"],
        );
        // Green presenting blue's handle: range-valid, scope-invalid.
        match service.handle(
            green,
            ServiceRequest::Check {
                h: blue_ids[0],
                k: blue_ids[1],
            },
        ) {
            Err(ServiceError::WrongTenant { id, tenant }) => {
                assert_eq!(id, blue_ids[0]);
                assert_eq!(tenant, green);
            }
            other => panic!("expected WrongTenant, got {other:?}"),
        }
        // Green registering the same schema interns onto blue's engine
        // entry — same handle, now valid for both tenants.
        let green_ids = ids_of(&service, green, &["T -> p::L?\nL -> EMPTY\n"]);
        assert_eq!(green_ids[0], blue_ids[0], "interned across tenants");
        assert_eq!(service.engine().schema_count(), 2);
        // An unknown tenant is refused outright.
        let ghost = TenantId(99);
        match service.handle(
            ghost,
            ServiceRequest::Register(Box::new(parse_schema("T -> EMPTY\n").unwrap())),
        ) {
            Err(ServiceError::UnknownTenant(t)) => assert_eq!(t, ghost),
            other => panic!("expected UnknownTenant, got {other:?}"),
        }
        // Errors render and fold into responses.
        let folded = ServiceResponse::from(ServiceError::Overloaded);
        assert!(matches!(
            folded,
            ServiceResponse::Error(ServiceError::Overloaded)
        ));
        assert!(format!("{}", ServiceError::Overloaded).contains("queue is full"));
    }

    #[test]
    fn serve_loop_answers_concurrent_clients() {
        let service = ContainmentService::new();
        let (client, requests) = service.connect(TenantId::DEFAULT, 64);
        std::thread::scope(|scope| {
            let server = {
                let service = service.clone();
                scope.spawn(move || service.serve(requests))
            };
            let texts = ["T -> p::L?\nL -> EMPTY\n", "T -> p::L\nL -> EMPTY\n"];
            let mut workers = Vec::new();
            for _ in 0..3 {
                let client = client.clone();
                workers.push(scope.spawn(move || {
                    let mut ids = Vec::new();
                    for t in texts {
                        let request = ServiceRequest::Register(Box::new(parse_schema(t).unwrap()));
                        match client.call_blocking(request).unwrap() {
                            ServiceResponse::Registered(id) => ids.push(id),
                            other => panic!("expected Registered, got {other:?}"),
                        }
                    }
                    match client
                        .call(ServiceRequest::Check {
                            h: ids[1],
                            k: ids[0],
                        })
                        .unwrap()
                    {
                        ServiceResponse::Answer(answer) => {
                            assert!(answer.is_contained(), "1 is within ?")
                        }
                        other => panic!("expected Answer, got {other:?}"),
                    }
                }));
            }
            for worker in workers {
                worker.join().unwrap();
            }
            drop(client); // all clients hung up; the server returns
            server.join().unwrap();
        });
        // Identical registrations from all clients interned onto one pair.
        assert_eq!(service.engine().schema_count(), 2);
        assert!(service.stats().latency.count() >= 9);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let service = ContainmentService::new();
        // Capacity-1 queue with no server draining it: the first request
        // parks in the queue, the second must be rejected, not queued.
        let (client, _requests) = service.connect(TenantId::DEFAULT, 1);
        let fire = || {
            let (reply, _responses) = mpsc::channel();
            ServiceEnvelope {
                tenant: TenantId::DEFAULT,
                request: ServiceRequest::Stats,
                reply,
            }
        };
        // Fill the queue directly (client.call would block on recv).
        client.sender().try_send(fire()).unwrap();
        match client.call(ServiceRequest::Stats) {
            Err(ServiceError::Overloaded) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(service.stats().rejected, 1, "rejections are counted");
        // Dropping the receiver turns sends into Disconnected, not hangs.
        drop(_requests);
        match client.call(ServiceRequest::Stats) {
            Err(ServiceError::Disconnected) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }
}
