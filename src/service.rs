//! A long-lived, multi-tenant containment service wrapping a shared
//! [`ContainmentEngine`].
//!
//! The engine is the seam a service wraps: every query method takes `&self`
//! over concurrent caches, so one engine behind an [`Arc`] serves any number
//! of clients, amortizing shape graphs, unfolding pools, and validation
//! verdicts across all of their queries. [`ContainmentService`] packages
//! that seam as a production-shaped request/response protocol:
//!
//! * **Tenant-scoped registries over one shared engine.** Every request
//!   carries a [`TenantId`] ([`TenantId::DEFAULT`] for single-tenant use;
//!   [`ContainmentService::create_tenant`] mints more). Registration is the
//!   upload endpoint: a tenant submits a [`Schema`] once
//!   ([`ServiceRequest::Register`]) and holds the returned [`SchemaId`] —
//!   structurally identical schemas intern onto one engine entry and share
//!   every cache *across* tenants, but a handle is only usable by tenants
//!   that registered it themselves; anyone else gets
//!   [`ServiceError::WrongTenant`], so one tenant cannot probe another's
//!   schemas by guessing handles.
//! * **Typed errors.** [`ContainmentService::handle`] returns
//!   `Result<ServiceResponse, ServiceError>`: unknown handles, foreign
//!   tenants, and overload are data, not strings. The serve loop folds
//!   errors back into [`ServiceResponse::Error`] (via `From`) for clients
//!   that want a plain response stream.
//! * **Bounded queue with explicit backpressure.** A
//!   [`ServiceClient`] from [`ContainmentService::connect`] talks to the
//!   serve loop over a bounded channel; when the queue is full,
//!   [`ServiceClient::call`] fails *fast* with [`ServiceError::Overloaded`]
//!   (counted in the stats) instead of queuing unboundedly —
//!   [`ServiceClient::call_blocking`] opts into waiting instead.
//! * **Streaming graphs with incremental revalidation.** A tenant streams
//!   N-Triples chunks into a service-held graph
//!   ([`ServiceRequest::LoadTriples`]; `graph: None` mints a fresh
//!   [`GraphId`], an empty chunk flushes the parser's final line) or applies
//!   edge-level batches ([`ServiceRequest::ApplyDelta`]), and asks for the
//!   validation verdict against any of its registered schemas with
//!   [`ServiceRequest::Revalidate`]. The service retains one
//!   [`IncrementalTyping`] per `(graph, schema)` pair and replays only the
//!   dirty-node log accumulated since that pair's last revalidation — an
//!   edit touching one node revalidates its affected region, never the
//!   whole graph. Graph handles are tenant-scoped like schema handles;
//!   presenting another tenant's (or a never-issued) handle gets
//!   [`ServiceError::UnknownGraph`], with no distinction that would leak
//!   which handles exist.
//! * **A metrics surface.** [`ServiceRequest::Stats`] answers a
//!   [`ServiceStats`]: the engine's cache/memory counters (evictions and
//!   resident bytes included, when the engine runs under a
//!   [`EngineOptions::cache_budget`]), the tenant count, the rejected
//!   count, and a log-spaced latency histogram
//!   ([`crate::metrics::LatencySnapshot`]) of every request this service
//!   answered. Its `Display` rendering is the line to log or scrape.
//!
//! * **Sharded workers.** [`ContainmentService::pool`] spawns a
//!   [`ServicePool`] of N serve-loop threads, each behind its own bounded
//!   queue; a [`PoolClient`] round-robins requests across the workers and
//!   rotates past full queues, so one slow [`ServiceRequest::Matrix`] no
//!   longer head-of-line-blocks every tenant. Backpressure keeps `connect`'s
//!   semantics per worker: [`PoolClient::call`] fails with
//!   [`ServiceError::Overloaded`] only when every queue is full.
//! * **Deadlines, bounded retries, and worker supervision.** Every
//!   [`ServiceEnvelope`] carries an optional absolute deadline. The serve
//!   loop refuses already-expired envelopes with
//!   [`ServiceError::DeadlineExceeded`] and runs the rest —
//!   [`ServiceRequest::Check`] and [`ServiceRequest::Matrix`] in
//!   particular — under an engine [`CancelToken`] bound to the deadline,
//!   so a 10 ms budget comes back within a bounded checkpoint interval as
//!   a typed answer, never as a hung worker.
//!   [`ServiceClient::call_timeout`] / [`PoolClient::call_timeout`] set
//!   the deadline, retry [`ServiceError::Overloaded`] with bounded
//!   deterministic-jitter backoff ([`ServiceStats::retries`] /
//!   [`ServiceStats::retry_gave_up`]), and surface a reply that misses
//!   the budget as [`ServiceError::DeadlineExceeded`] instead of parking
//!   forever. Pool workers run under a supervisor: a panic while handling
//!   a request still answers that caller (with [`ServiceError::Internal`]),
//!   the worker is respawned onto the same queue, and the restart is
//!   counted in [`ServiceStats::worker_restarts`]. Expired requests land
//!   in a separate timeout histogram ([`ServiceStats::timeouts`]) so the
//!   latency tail of successful traffic stays honest.
//!
//! The protocol stays transport-agnostic: `handle` maps one request to one
//! response and is safe from any number of threads;
//! [`ContainmentService::serve`] runs it as a blocking loop over a channel
//! of [`ServiceEnvelope`]s — the shape `examples/containment_service.rs`
//! demonstrates with one server thread, several tenants, and a deliberate
//! overload burst. Because the service is [`Clone`] (it clones the inner
//! [`Arc`]s), the same engine can sit behind several server threads at once —
//! [`ContainmentService::pool`] packages exactly that.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use shapex_core::cancel::CancelToken;
use shapex_core::engine::{
    ContainmentEngine, ContainmentMatrix, EngineOptions, EngineStats, SchemaId,
};
use shapex_core::sync::{lock_or_recover, read_or_recover, write_or_recover};
use shapex_core::{faults, Containment, UnknownReason};
use shapex_graph::{DeltaReport, Graph, GraphDelta, NTriplesParser, NodeId, Triple};
use shapex_shex::{IncrementalTyping, Schema};

use crate::metrics::{LatencyHistogram, LatencySnapshot};

// One service handle is shared across server and client threads.
shapex_graph::assert_send_sync!(
    ContainmentService,
    ServiceClient,
    ServicePool,
    PoolClient,
    ServiceRequest,
    ServiceResponse,
    ServiceError,
    ServiceEnvelope,
    TenantId,
    GraphId
);

/// A tenant of a [`ContainmentService`]: an isolation scope for schema
/// handles. Mint one per client organisation with
/// [`ContainmentService::create_tenant`]; handles returned to one tenant
/// are rejected ([`ServiceError::WrongTenant`]) when presented by another.
/// Like [`SchemaId`], a `TenantId` is only meaningful for the service that
/// issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(u32);

impl TenantId {
    /// The tenant every service starts with — single-tenant deployments
    /// never need another.
    pub const DEFAULT: TenantId = TenantId(0);

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// A handle to a streaming graph held by a [`ContainmentService`], minted
/// by the first [`ServiceRequest::LoadTriples`] with `graph: None`. Like
/// [`SchemaId`], it is only meaningful for the service that issued it —
/// and unlike schemas (which intern structurally and may be shared across
/// tenants), every graph belongs to exactly the tenant that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GraphId(u32);

impl GraphId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GraphId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph#{}", self.0)
    }
}

/// A request to a [`ContainmentService`].
///
/// The enum is the service's wire format: everything a client can ask for,
/// self-contained (schemas travel by value on registration, by [`SchemaId`]
/// handle afterwards). The [`TenantId`] travels next to the request — in
/// [`ContainmentService::handle`]'s signature and in the
/// [`ServiceEnvelope`] — not inside it, so requests themselves stay
/// tenant-agnostic.
#[derive(Debug, Clone)]
pub enum ServiceRequest {
    /// Register a schema under the requesting tenant, interning
    /// structurally identical submissions onto one engine entry. Answered
    /// with [`ServiceResponse::Registered`]. Boxed: a `Schema` is hundreds
    /// of bytes, and requests travel through queues sized for the smallest
    /// variants.
    Register(Box<Schema>),
    /// Decide `L(h) ⊆ L(k)` for two handles of the requesting tenant.
    /// Answered with [`ServiceResponse::Answer`].
    Check {
        /// The candidate sub-schema.
        h: SchemaId,
        /// The candidate super-schema.
        k: SchemaId,
    },
    /// The full pairwise containment matrix over handles of the requesting
    /// tenant. Answered with [`ServiceResponse::Matrix`].
    Matrix(Vec<SchemaId>),
    /// Stream one chunk of N-Triples into a tenant graph. `graph: None`
    /// mints a fresh empty graph (and the response carries its new
    /// [`GraphId`]); an **empty chunk** flushes the parser's final
    /// unterminated line — the end-of-stream convention. Chunks may split
    /// statements anywhere: the service's push parser buffers at most one
    /// line between requests. Answered with [`ServiceResponse::Loaded`].
    LoadTriples {
        /// The graph to extend, or `None` to create one.
        graph: Option<GraphId>,
        /// The next slice of the N-Triples document (empty = flush).
        chunk: Vec<u8>,
    },
    /// Apply a batch of edge-level additions and removals to a tenant
    /// graph, recording the dirty nodes for later [`ServiceRequest::Revalidate`]
    /// calls. Boxed for the same queue-sizing reason as `Register`.
    /// Answered with [`ServiceResponse::Applied`].
    ApplyDelta {
        /// The graph to mutate.
        graph: GraphId,
        /// The changes to apply.
        delta: Box<GraphDelta>,
    },
    /// The validation verdict of a tenant graph against one of the tenant's
    /// registered schemas, computed incrementally: only the dirty nodes
    /// accumulated since this `(graph, schema)` pair's previous revalidation
    /// (and the region they influence) are re-examined. Answered with
    /// [`ServiceResponse::Validation`].
    Revalidate {
        /// The graph to validate.
        graph: GraphId,
        /// The schema to validate against.
        schema: SchemaId,
    },
    /// Snapshot the service's metrics. Answered with
    /// [`ServiceResponse::Stats`].
    Stats,
}

/// A response from a [`ContainmentService`], one per [`ServiceRequest`].
#[derive(Debug, Clone)]
pub enum ServiceResponse {
    /// The handle for a registered schema.
    Registered(SchemaId),
    /// The answer to a [`ServiceRequest::Check`].
    Answer(Containment),
    /// The answer to a [`ServiceRequest::Matrix`].
    Matrix(ContainmentMatrix),
    /// The outcome of a [`ServiceRequest::LoadTriples`] chunk.
    Loaded {
        /// The graph the chunk went into (fresh when the request carried
        /// `graph: None`).
        graph: GraphId,
        /// Total triples parsed into this graph across all chunks so far.
        triples: u64,
        /// What this chunk changed, dirty nodes included. Boxed: the dirty
        /// list can be long, and responses travel through queues sized for
        /// the smallest variants.
        report: Box<DeltaReport>,
    },
    /// The outcome of a [`ServiceRequest::ApplyDelta`] batch.
    Applied {
        /// The graph the delta was applied to.
        graph: GraphId,
        /// What the batch changed, dirty nodes included.
        report: Box<DeltaReport>,
    },
    /// The verdict for a [`ServiceRequest::Revalidate`].
    Validation {
        /// The graph that was validated.
        graph: GraphId,
        /// The schema it was validated against.
        schema: SchemaId,
        /// Whether the graph currently satisfies the schema (its maximal
        /// typing is total).
        valid: bool,
        /// Nodes whose types were actually recomputed by this request — the
        /// affected region of the dirty log, not the whole graph.
        affected: usize,
    },
    /// The metrics snapshot for a [`ServiceRequest::Stats`]. Boxed: the
    /// snapshot (histogram included) is far larger than the other variants.
    Stats(Box<ServiceStats>),
    /// A folded-in [`ServiceError`], produced by the `From` impl — the
    /// serve loop sends this when `handle` fails, so response streams stay
    /// uniform. Direct callers of [`ContainmentService::handle`] get the
    /// error on the `Err` side instead and never see this variant.
    Error(ServiceError),
}

/// Why a [`ContainmentService`] refused a request. `#[non_exhaustive]`:
/// future services may refuse for further reasons (quotas, timeouts), so
/// downstream matches need a catch-all arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The handle was never issued by this service's engine.
    UnknownHandle {
        /// The offending handle.
        id: SchemaId,
        /// How many schemas the engine has registered (the valid range).
        registered: usize,
    },
    /// The handle exists but belongs to other tenants — the requesting
    /// tenant never registered that schema.
    WrongTenant {
        /// The offending handle.
        id: SchemaId,
        /// The requesting tenant.
        tenant: TenantId,
    },
    /// The [`TenantId`] was never issued by this service.
    UnknownTenant(TenantId),
    /// The graph handle is not usable by the requesting tenant — never
    /// issued, or issued to a different tenant. The two cases are
    /// deliberately indistinguishable so tenants cannot probe which graph
    /// handles exist.
    UnknownGraph(GraphId),
    /// A [`ServiceRequest::LoadTriples`] chunk failed to parse. The graph
    /// keeps its state from before the bad statement and the parser is
    /// reset, so the tenant can resume streaming from a clean line
    /// boundary.
    Parse {
        /// The graph the chunk was destined for.
        graph: GraphId,
        /// 1-based line number of the offending statement.
        line: u64,
        /// Human-readable description of the failure.
        message: String,
    },
    /// The bounded request queue is full; retry later or shed load. The
    /// rejection is counted in [`ServiceStats::rejected`].
    Overloaded,
    /// The serve loop (or the reply channel) hung up before answering.
    Disconnected,
    /// The request's deadline expired before a complete answer was
    /// produced — either while it sat in the queue (the serve loop refuses
    /// to start expired work) or client-side when the reply missed a
    /// [`ServiceClient::call_timeout`] budget. An engine-level expiry that
    /// still yields a typed verdict comes back as
    /// [`ServiceResponse::Answer`] carrying
    /// [`UnknownReason::DeadlineExceeded`] instead. Counted in the
    /// [`ServiceStats::timeouts`] histogram.
    DeadlineExceeded,
    /// The worker handling the request panicked. The caller was still
    /// answered (with this error), the worker was respawned by its
    /// supervisor — counted in [`ServiceStats::worker_restarts`] — and the
    /// service keeps serving, so the request is safe to retry.
    Internal,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownHandle { id, registered } => write!(
                f,
                "unknown schema handle {id:?} (this service has {registered} registered)"
            ),
            ServiceError::WrongTenant { id, tenant } => {
                write!(f, "schema handle {id:?} is not registered to {tenant}")
            }
            ServiceError::UnknownTenant(tenant) => {
                write!(f, "{tenant} was never issued by this service")
            }
            ServiceError::UnknownGraph(graph) => {
                write!(f, "{graph} is not a graph handle of the requesting tenant")
            }
            ServiceError::Parse {
                graph,
                line,
                message,
            } => {
                write!(
                    f,
                    "cannot parse N-Triples for {graph}: line {line}: {message}"
                )
            }
            ServiceError::Overloaded => write!(f, "request queue is full; retry later"),
            ServiceError::Disconnected => write!(f, "service hung up before answering"),
            ServiceError::DeadlineExceeded => {
                write!(f, "deadline expired before the request completed")
            }
            ServiceError::Internal => write!(
                f,
                "the worker panicked handling the request (it was respawned; safe to retry)"
            ),
        }
    }
}

impl Error for ServiceError {}

impl From<ServiceError> for ServiceResponse {
    /// Fold an error into the response stream — what
    /// [`ContainmentService::serve`] does, so channel clients see one
    /// uniform `ServiceResponse` type.
    fn from(error: ServiceError) -> ServiceResponse {
        ServiceResponse::Error(error)
    }
}

/// Whether a dispatch outcome is a deadline expiry — the typed
/// [`ServiceError::DeadlineExceeded`], or an engine verdict that gave up
/// with [`UnknownReason::DeadlineExceeded`]. Routes the latency sample
/// into [`ServiceStats::timeouts`] instead of [`ServiceStats::latency`].
fn expired(response: &Result<ServiceResponse, ServiceError>) -> bool {
    match response {
        Err(ServiceError::DeadlineExceeded) => true,
        Ok(ServiceResponse::Answer(answer)) => matches!(
            answer.unknown_reason(),
            Some(UnknownReason::DeadlineExceeded { .. })
        ),
        _ => false,
    }
}

/// Total send attempts a `call_timeout` retry loop makes (the first try
/// plus up to `RETRY_ATTEMPTS - 1` backed-off re-sends).
const RETRY_ATTEMPTS: u64 = 4;

/// splitmix64, the standard 64-bit mixer: retry jitter derives from it
/// deterministically — equal `(seed, attempt)` pairs always pause equally,
/// so overload behaviour replays exactly, yet distinct callers decorrelate.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The pause before retry `attempt` (0-based): an exponential base
/// (100 µs · 2^attempt) plus a deterministic jitter in `[0, 100 µs)` drawn
/// from `(seed, attempt)`. `None` once attempts are exhausted or the pause
/// would sleep past `deadline` — the caller should give up instead.
fn retry_backoff(seed: u64, attempt: u64, deadline: Instant) -> Option<Duration> {
    if attempt + 1 >= RETRY_ATTEMPTS {
        return None;
    }
    let base_micros = 100u64 << attempt.min(8);
    let jitter_micros = splitmix64(seed ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 100;
    let pause = Duration::from_micros(base_micros + jitter_micros);
    let remaining = deadline.checked_duration_since(Instant::now())?;
    (pause < remaining).then_some(pause)
}

/// One queued request: who asks, what they ask, and the channel the answer
/// goes back on — the envelope [`ContainmentService::serve`] consumes.
/// Built by [`ServiceClient::call`]; construct it directly only when
/// driving `serve` over a hand-rolled channel.
#[derive(Debug)]
pub struct ServiceEnvelope {
    /// The requesting tenant.
    pub tenant: TenantId,
    /// The request itself.
    pub request: ServiceRequest,
    /// Where the response goes. Errors arrive folded in as
    /// [`ServiceResponse::Error`].
    pub reply: mpsc::Sender<ServiceResponse>,
    /// The absolute deadline for answering, if any: the serve loop refuses
    /// expired envelopes with [`ServiceError::DeadlineExceeded`] and runs
    /// `Check`/`Matrix` requests under an engine [`CancelToken`] bound to
    /// it. Set by [`ServiceClient::call_timeout`]; `None` means no limit.
    pub deadline: Option<Instant>,
}

/// The full metrics surface of a [`ContainmentService`]: the engine's
/// cache/memory counters plus the service-level tenancy, backpressure, and
/// latency numbers. Snapshot via [`ServiceRequest::Stats`] or
/// [`ContainmentService::stats`]; the `Display` rendering is the log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// The engine snapshot: hit ratios, resident bytes, evictions.
    pub engine: EngineStats,
    /// Tenants issued (the default tenant included).
    pub tenants: usize,
    /// Streaming graphs held by the service across all tenants.
    pub graphs: usize,
    /// Requests rejected with [`ServiceError::Overloaded`] by clients of
    /// this service's bounded queues.
    pub rejected: u64,
    /// Re-sends performed by [`ServiceClient::call_timeout`]-style retry
    /// loops after an [`ServiceError::Overloaded`] rejection.
    pub retries: u64,
    /// Retry loops that exhausted their backoff budget and surfaced
    /// [`ServiceError::Overloaded`] to the caller anyway.
    pub retry_gave_up: u64,
    /// Pool workers respawned by their supervisor after a panic.
    pub worker_restarts: u64,
    /// The latency distribution over every request this service answered
    /// within its deadline (or that had none).
    pub latency: LatencySnapshot,
    /// The latency distribution of requests whose deadline expired — kept
    /// out of [`ServiceStats::latency`] so the tail of successful traffic
    /// is not polluted by requests that were *meant* to stop early.
    pub timeouts: LatencySnapshot,
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}; {} tenants; {} graphs; {} rejected; {} retries ({} gave up); \
             {} worker restarts; latency: {}; timeouts: {}",
            self.engine,
            self.tenants,
            self.graphs,
            self.rejected,
            self.retries,
            self.retry_gave_up,
            self.worker_restarts,
            self.latency,
            self.timeouts
        )
    }
}

/// Shared service-level state behind the [`Arc`] every clone and client
/// holds: the tenant scopes and the metrics the engine cannot know about.
#[derive(Debug)]
struct ServiceState {
    /// `tenants[t]` = the handles tenant `t` registered. Read-mostly: every
    /// query takes the read lock; only registration and tenant creation
    /// write.
    tenants: RwLock<Vec<HashSet<SchemaId>>>,
    /// `graphs[g]` = the streaming graph behind [`GraphId`] `g`. The outer
    /// lock is read-mostly (only graph creation writes); each slot carries
    /// its own mutex, so tenants streaming into different graphs never
    /// contend.
    graphs: RwLock<Vec<GraphSlot>>,
    /// Requests rejected with [`ServiceError::Overloaded`].
    rejected: AtomicU64,
    /// Overloaded re-sends performed by `call_timeout` retry loops.
    retries: AtomicU64,
    /// Retry loops that gave up and surfaced `Overloaded` anyway.
    retry_gave_up: AtomicU64,
    /// Pool worker incarnations respawned after a panic.
    worker_restarts: AtomicU64,
    /// Latency of every request answered within its deadline.
    latency: LatencyHistogram,
    /// Latency of requests whose deadline expired, kept separate so the
    /// successful tail stays honest.
    timeouts: LatencyHistogram,
}

/// One streaming graph and its owner.
#[derive(Debug)]
struct GraphSlot {
    /// The tenant the handle was issued to — the only tenant that may
    /// touch this slot.
    tenant: TenantId,
    /// The evolving state, serialised per graph.
    entry: Mutex<GraphEntry>,
}

/// The evolving state behind one [`GraphId`]: the graph, the push parser
/// carrying at most one incomplete line between chunks, the dirty-node log,
/// and the retained typings that consume it.
#[derive(Debug)]
struct GraphEntry {
    /// The graph as of all chunks and deltas applied so far.
    graph: Graph,
    /// The streaming N-Triples parser (bounded buffer: at most one line).
    parser: NTriplesParser,
    /// Dirty nodes accumulated since the oldest unsynced typing, in
    /// application order (duplicates allowed — revalidation dedupes via its
    /// worklist). Trimmed whenever every retained typing has caught up.
    dirty: Vec<NodeId>,
    /// One retained incremental typing per schema this graph has been
    /// validated against, each with its sync point into `dirty`.
    typings: HashMap<SchemaId, TypingSlot>,
}

/// A retained [`IncrementalTyping`] plus how much of the dirty log it has
/// already consumed.
#[derive(Debug)]
struct TypingSlot {
    typing: IncrementalTyping,
    /// Offset into [`GraphEntry::dirty`]: everything before it is already
    /// reflected in `typing`.
    synced: usize,
}

/// A long-lived, multi-tenant containment session behind a
/// request/response protocol; see the [module docs](self). Cloning is cheap
/// (two [`Arc`] bumps) and clones share the engine and all service state,
/// so one service can be driven from many threads.
#[derive(Debug, Clone)]
pub struct ContainmentService {
    engine: Arc<ContainmentEngine>,
    state: Arc<ServiceState>,
}

impl Default for ContainmentService {
    fn default() -> Self {
        ContainmentService::new()
    }
}

impl ContainmentService {
    /// A service over a fresh engine with default options.
    pub fn new() -> ContainmentService {
        ContainmentService::with_options(EngineOptions::default())
    }

    /// A service over a fresh engine with the given options. Production
    /// deployments set [`EngineOptions::cache_budget`] here — a service
    /// lives long enough for unbounded caches to matter.
    pub fn with_options(options: EngineOptions) -> ContainmentService {
        ContainmentService::from_engine(Arc::new(ContainmentEngine::with_options(options)))
    }

    /// Wrap an existing shared engine — e.g. one that local code also
    /// queries directly while the service exposes it to other threads.
    pub fn from_engine(engine: Arc<ContainmentEngine>) -> ContainmentService {
        ContainmentService {
            engine,
            state: Arc::new(ServiceState {
                tenants: RwLock::new(vec![HashSet::new()]),
                graphs: RwLock::new(Vec::new()),
                rejected: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                retry_gave_up: AtomicU64::new(0),
                worker_restarts: AtomicU64::new(0),
                latency: LatencyHistogram::new(),
                timeouts: LatencyHistogram::new(),
            }),
        }
    }

    /// The shared engine behind the service.
    pub fn engine(&self) -> &Arc<ContainmentEngine> {
        &self.engine
    }

    /// Mint a new, empty tenant scope.
    pub fn create_tenant(&self) -> TenantId {
        let mut tenants = write_or_recover(&self.state.tenants);
        let id = TenantId(tenants.len() as u32);
        tenants.push(HashSet::new());
        id
    }

    /// Tenants issued so far (the default tenant included).
    pub fn tenant_count(&self) -> usize {
        read_or_recover(&self.state.tenants).len()
    }

    /// Streaming graphs held so far, across all tenants.
    pub fn graph_count(&self) -> usize {
        read_or_recover(&self.state.graphs).len()
    }

    /// The service's metrics snapshot (what [`ServiceRequest::Stats`]
    /// answers).
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            engine: self.engine.stats(),
            tenants: self.tenant_count(),
            graphs: self.graph_count(),
            rejected: self.state.rejected.load(Ordering::Relaxed),
            retries: self.state.retries.load(Ordering::Relaxed),
            retry_gave_up: self.state.retry_gave_up.load(Ordering::Relaxed),
            worker_restarts: self.state.worker_restarts.load(Ordering::Relaxed),
            latency: self.state.latency.snapshot(),
            timeouts: self.state.timeouts.snapshot(),
        }
    }

    /// Answer one request on behalf of a tenant. Pure dispatch onto the
    /// engine plus the tenant bookkeeping: safe to call from any number of
    /// threads at once, with or without
    /// [`serve`](ContainmentService::serve) running elsewhere. Every call —
    /// errors included — is recorded in the latency histogram.
    pub fn handle(
        &self,
        tenant: TenantId,
        request: ServiceRequest,
    ) -> Result<ServiceResponse, ServiceError> {
        self.handle_with_deadline(tenant, request, None)
    }

    /// [`handle`](ContainmentService::handle) under an optional absolute
    /// deadline. An already-expired deadline is refused with
    /// [`ServiceError::DeadlineExceeded`] before the engine runs (the queue
    /// wait consumed the budget); otherwise [`ServiceRequest::Check`] and
    /// [`ServiceRequest::Matrix`] run under an engine [`CancelToken`] bound
    /// to the deadline, so an expiry mid-search surfaces within a bounded
    /// checkpoint interval as a typed [`UnknownReason::DeadlineExceeded`]
    /// verdict. Expired requests are recorded in the
    /// [`ServiceStats::timeouts`] histogram instead of the main one.
    pub fn handle_with_deadline(
        &self,
        tenant: TenantId,
        request: ServiceRequest,
        deadline: Option<Instant>,
    ) -> Result<ServiceResponse, ServiceError> {
        let started = Instant::now();
        let response = if deadline.is_some_and(|deadline| deadline <= started) {
            Err(ServiceError::DeadlineExceeded)
        } else {
            self.dispatch(tenant, request, deadline)
        };
        let histogram = if expired(&response) {
            &self.state.timeouts
        } else {
            &self.state.latency
        };
        histogram.record(started.elapsed());
        response
    }

    fn dispatch(
        &self,
        tenant: TenantId,
        request: ServiceRequest,
        deadline: Option<Instant>,
    ) -> Result<ServiceResponse, ServiceError> {
        match request {
            ServiceRequest::Register(schema) => {
                // Existence check before the engine mutates anything.
                if tenant.index() >= self.tenant_count() {
                    return Err(ServiceError::UnknownTenant(tenant));
                }
                // The schema arrived parsed; this is the service's
                // post-parse seam, just before any state mutates.
                faults::trigger(faults::site::POST_PARSE);
                let id = self.engine.register(&schema);
                write_or_recover(&self.state.tenants)[tenant.index()].insert(id);
                Ok(ServiceResponse::Registered(id))
            }
            ServiceRequest::Check { h, k } => {
                self.checked(tenant, h)?;
                self.checked(tenant, k)?;
                let answer = match deadline {
                    Some(deadline) => self.engine.check_ids_cancellable(
                        h,
                        k,
                        &CancelToken::with_deadline(deadline),
                    ),
                    None => self.engine.check_ids(h, k),
                };
                Ok(ServiceResponse::Answer(answer))
            }
            ServiceRequest::Matrix(ids) => {
                for &id in &ids {
                    self.checked(tenant, id)?;
                }
                let matrix = match deadline {
                    Some(deadline) => {
                        let remaining = deadline.saturating_duration_since(Instant::now());
                        self.engine.check_matrix_ids_deadline(&ids, remaining)
                    }
                    None => self.engine.check_matrix_ids(&ids),
                };
                Ok(ServiceResponse::Matrix(matrix))
            }
            ServiceRequest::LoadTriples { graph, chunk } => {
                let id = match graph {
                    Some(id) => id,
                    None => self.create_graph(tenant)?,
                };
                self.with_graph(tenant, id, |entry| {
                    let mut delta = GraphDelta::new();
                    let mut sink =
                        |t: Triple<'_>| delta.add_triple(t.subject, t.predicate, t.object);
                    let parsed = if chunk.is_empty() {
                        entry.parser.finish(&mut sink)
                    } else {
                        entry.parser.feed(&chunk, &mut sink)
                    };
                    if let Err(error) = parsed {
                        // After an error the parser state is unspecified:
                        // reset it so the tenant resumes from a clean line
                        // boundary. Triples before the bad statement in
                        // this chunk are dropped with it — the graph only
                        // ever reflects fully accepted chunks.
                        entry.parser = NTriplesParser::new();
                        return Err(ServiceError::Parse {
                            graph: id,
                            line: error.line,
                            message: error.message,
                        });
                    }
                    // Chunk fully parsed, graph not yet mutated: an
                    // injected panic here leaves the entry consistent (the
                    // chunk is simply dropped) and the poisoned entry lock
                    // recovers on the next request.
                    faults::trigger(faults::site::POST_PARSE);
                    let report = entry.graph.apply_delta(&delta);
                    entry.dirty.extend_from_slice(&report.dirty);
                    Ok(ServiceResponse::Loaded {
                        graph: id,
                        triples: entry.parser.triples(),
                        report: Box::new(report),
                    })
                })
            }
            ServiceRequest::ApplyDelta { graph, delta } => {
                self.with_graph(tenant, graph, |entry| {
                    let report = entry.graph.apply_delta(&delta);
                    entry.dirty.extend_from_slice(&report.dirty);
                    Ok(ServiceResponse::Applied {
                        graph,
                        report: Box::new(report),
                    })
                })
            }
            ServiceRequest::Revalidate { graph, schema } => {
                self.checked(tenant, schema)?;
                let definition = self.engine.schema(schema);
                self.with_graph(tenant, graph, |entry| {
                    // Split borrows: the typing consumes the dirty log while
                    // reading the graph.
                    let GraphEntry {
                        graph: g,
                        dirty,
                        typings,
                        ..
                    } = entry;
                    let (valid, affected) = {
                        let slot = typings.entry(schema).or_insert_with(|| TypingSlot {
                            // A fresh typing reflects the graph as-is, dirty
                            // log included.
                            typing: IncrementalTyping::new(g, &definition),
                            synced: dirty.len(),
                        });
                        let affected = if slot.synced < dirty.len() {
                            let n = slot.typing.apply(g, &definition, &dirty[slot.synced..]);
                            slot.synced = dirty.len();
                            n
                        } else {
                            0
                        };
                        (slot.typing.is_total(), affected)
                    };
                    // Trim the log once every retained typing has caught up,
                    // so it grows with the edit rate between revalidations,
                    // not with the graph's lifetime.
                    if !dirty.is_empty() && typings.values().all(|s| s.synced == dirty.len()) {
                        dirty.clear();
                        for slot in typings.values_mut() {
                            slot.synced = 0;
                        }
                    }
                    Ok(ServiceResponse::Validation {
                        graph,
                        schema,
                        valid,
                        affected,
                    })
                })
            }
            ServiceRequest::Stats => Ok(ServiceResponse::Stats(Box::new(self.stats()))),
        }
    }

    /// Mint a fresh, empty streaming graph owned by `tenant`.
    fn create_graph(&self, tenant: TenantId) -> Result<GraphId, ServiceError> {
        if tenant.index() >= self.tenant_count() {
            return Err(ServiceError::UnknownTenant(tenant));
        }
        let mut graphs = write_or_recover(&self.state.graphs);
        let id = GraphId(graphs.len() as u32);
        graphs.push(GraphSlot {
            tenant,
            entry: Mutex::new(GraphEntry {
                graph: Graph::new(),
                parser: NTriplesParser::new(),
                dirty: Vec::new(),
                typings: HashMap::new(),
            }),
        });
        Ok(id)
    }

    /// Run `f` over the entry behind `id`, after checking the handle was
    /// issued to `tenant` — foreign and never-issued handles get the same
    /// [`ServiceError::UnknownGraph`].
    fn with_graph<R>(
        &self,
        tenant: TenantId,
        id: GraphId,
        f: impl FnOnce(&mut GraphEntry) -> Result<R, ServiceError>,
    ) -> Result<R, ServiceError> {
        let graphs = read_or_recover(&self.state.graphs);
        let slot = graphs
            .get(id.index())
            .filter(|slot| slot.tenant == tenant)
            .ok_or(ServiceError::UnknownGraph(id))?;
        let mut entry = lock_or_recover(&slot.entry);
        f(&mut entry)
    }

    /// A client onto this service's serve loop over a *bounded* queue of
    /// `capacity` in-flight requests, plus the receiver to hand to
    /// [`serve`](ContainmentService::serve) (on a dedicated thread).
    /// Clients are cheap to clone; clones share the queue and the tenant.
    pub fn connect(
        &self,
        tenant: TenantId,
        capacity: usize,
    ) -> (ServiceClient, mpsc::Receiver<ServiceEnvelope>) {
        let (requests, receiver) = mpsc::sync_channel(capacity.max(1));
        (
            ServiceClient {
                requests,
                tenant,
                state: self.state.clone(),
            },
            receiver,
        )
    }

    /// The synchronous request loop: answer every envelope until all
    /// request senders are dropped, then return. Errors are folded into
    /// [`ServiceResponse::Error`]; a client that hung up before its
    /// response arrived is skipped silently. Run it on a dedicated thread
    /// (or several — clones share the engine) and hand clients the sender
    /// side of the channel.
    pub fn serve(&self, requests: mpsc::Receiver<ServiceEnvelope>) {
        for ServiceEnvelope {
            tenant,
            request,
            reply,
            deadline,
        } in requests
        {
            let response = match self.handle_with_deadline(tenant, request, deadline) {
                Ok(response) => response,
                Err(error) => ServiceResponse::from(error),
            };
            let _ = reply.send(response);
        }
    }

    /// Range-check a client-supplied handle, then scope-check it against
    /// the requesting tenant.
    fn checked(&self, tenant: TenantId, id: SchemaId) -> Result<(), ServiceError> {
        if !self.engine.is_registered(id) {
            return Err(ServiceError::UnknownHandle {
                id,
                registered: self.engine.schema_count(),
            });
        }
        let tenants = read_or_recover(&self.state.tenants);
        let scope = tenants
            .get(tenant.index())
            .ok_or(ServiceError::UnknownTenant(tenant))?;
        if scope.contains(&id) {
            Ok(())
        } else {
            Err(ServiceError::WrongTenant { id, tenant })
        }
    }
}

/// A tenant's handle onto a serving [`ContainmentService`], from
/// [`ContainmentService::connect`]: requests go through the bounded queue,
/// responses come back on a per-call reply channel. [`ServiceClient::call`]
/// rejects immediately with [`ServiceError::Overloaded`] when the queue is
/// full — backpressure as an explicit, typed signal;
/// [`ServiceClient::call_blocking`] waits for a slot instead.
#[derive(Debug, Clone)]
pub struct ServiceClient {
    requests: mpsc::SyncSender<ServiceEnvelope>,
    tenant: TenantId,
    state: Arc<ServiceState>,
}

impl ServiceClient {
    /// The tenant this client requests as.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The raw envelope sender behind this client — for hand-rolled
    /// transports that build [`ServiceEnvelope`]s themselves. Sends count
    /// against the same bounded capacity as [`ServiceClient::call`].
    pub fn sender(&self) -> &mpsc::SyncSender<ServiceEnvelope> {
        &self.requests
    }

    /// Send one request and wait for its response, failing *fast* with
    /// [`ServiceError::Overloaded`] (counted in the stats) when the queue
    /// is full. Service-side errors come back on the `Err` side, unfolded
    /// from the response stream.
    pub fn call(&self, request: ServiceRequest) -> Result<ServiceResponse, ServiceError> {
        let (reply, responses) = mpsc::channel();
        let envelope = ServiceEnvelope {
            tenant: self.tenant,
            request,
            reply,
            deadline: None,
        };
        match self.requests.try_send(envelope) {
            Ok(()) => {}
            Err(mpsc::TrySendError::Full(_)) => {
                self.state.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::Overloaded);
            }
            Err(mpsc::TrySendError::Disconnected(_)) => return Err(ServiceError::Disconnected),
        }
        Self::unfold(responses.recv().map_err(|_| ServiceError::Disconnected)?)
    }

    /// Like [`ServiceClient::call`], but block for a queue slot instead of
    /// rejecting — for batch producers that prefer waiting over shedding.
    ///
    /// **Hazard:** this parks *unboundedly*, twice over — first for a queue
    /// slot, then for the reply. If the serve loop is wedged or slow, the
    /// caller waits forever; nothing bounds either wait. Interactive
    /// callers should use [`ServiceClient::call_timeout`], which bounds
    /// both and turns a missed budget into a typed error.
    pub fn call_blocking(&self, request: ServiceRequest) -> Result<ServiceResponse, ServiceError> {
        let (reply, responses) = mpsc::channel();
        let envelope = ServiceEnvelope {
            tenant: self.tenant,
            request,
            reply,
            deadline: None,
        };
        self.requests
            .send(envelope)
            .map_err(|_| ServiceError::Disconnected)?;
        Self::unfold(responses.recv().map_err(|_| ServiceError::Disconnected)?)
    }

    /// Send one request under a wall-clock budget. The envelope carries an
    /// absolute deadline `timeout` from now; [`ServiceError::Overloaded`]
    /// is retried with bounded, deterministically-jittered exponential
    /// backoff (each re-send counted in [`ServiceStats::retries`],
    /// exhaustion in [`ServiceStats::retry_gave_up`]); and a reply that
    /// misses the budget comes back as [`ServiceError::DeadlineExceeded`]
    /// — this call never parks unboundedly. An engine-level expiry that
    /// still answers in time arrives as [`ServiceResponse::Answer`] with
    /// an [`UnknownReason::DeadlineExceeded`] verdict. Note that a
    /// client-side timeout does not revoke the queued request: the server
    /// still dispatches it (and its deadline) eventually, answering into a
    /// dropped channel.
    pub fn call_timeout(
        &self,
        request: ServiceRequest,
        timeout: Duration,
    ) -> Result<ServiceResponse, ServiceError> {
        let deadline = Instant::now()
            .checked_add(timeout)
            .expect("deadline overflows the monotonic clock");
        let (reply, responses) = mpsc::channel();
        let mut envelope = ServiceEnvelope {
            tenant: self.tenant,
            request,
            reply,
            deadline: Some(deadline),
        };
        let mut attempt = 0;
        loop {
            match self.requests.try_send(envelope) {
                Ok(()) => break,
                Err(mpsc::TrySendError::Full(back)) => {
                    envelope = back;
                    let seed = (u64::from(self.tenant.0) << 32)
                        ^ self.state.retries.load(Ordering::Relaxed);
                    let Some(pause) = retry_backoff(seed, attempt, deadline) else {
                        self.state.retry_gave_up.fetch_add(1, Ordering::Relaxed);
                        self.state.rejected.fetch_add(1, Ordering::Relaxed);
                        return Err(ServiceError::Overloaded);
                    };
                    self.state.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(pause);
                    attempt += 1;
                }
                Err(mpsc::TrySendError::Disconnected(_)) => return Err(ServiceError::Disconnected),
            }
        }
        Self::recv_deadline(&responses, deadline)
    }

    /// Wait for a reply until `deadline`, mapping a missed budget onto
    /// [`ServiceError::DeadlineExceeded`].
    fn recv_deadline(
        responses: &mpsc::Receiver<ServiceResponse>,
        deadline: Instant,
    ) -> Result<ServiceResponse, ServiceError> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match responses.recv_timeout(remaining) {
            Ok(response) => Self::unfold(response),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServiceError::DeadlineExceeded),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServiceError::Disconnected),
        }
    }

    /// Lift a folded [`ServiceResponse::Error`] back onto the `Err` side.
    fn unfold(response: ServiceResponse) -> Result<ServiceResponse, ServiceError> {
        match response {
            ServiceResponse::Error(error) => Err(error),
            other => Ok(other),
        }
    }
}

/// A sharded pool of serve-loop workers over one shared service, from
/// [`ContainmentService::pool`]: `N` dedicated threads, each draining its
/// own bounded queue, all dispatching onto the same engine and caches.
///
/// One blocking [`ContainmentService::serve`] loop head-of-line-blocks every
/// tenant behind whichever request is currently executing — one slow
/// [`ServiceRequest::Matrix`] stalls the cheapest `Stats` probe. The pool
/// shards the queues instead: a [`PoolClient`] round-robins fresh requests
/// across the workers and rotates past full queues, so a slow request delays
/// only the (bounded) queue behind its own worker. Backpressure stays
/// per-worker and explicit: [`PoolClient::call`] returns
/// [`ServiceError::Overloaded`] only when *every* worker queue is full.
///
/// Duplicate concurrent queries landing on different workers coalesce inside
/// the engine (single-flight, [`EngineOptions::coalesce`]), so sharding the
/// loop never multiplies the work of a thundering herd.
#[derive(Debug)]
pub struct ServicePool {
    service: ContainmentService,
    /// One bounded queue per worker; the `Arc` is shared with every client.
    senders: Arc<Vec<mpsc::SyncSender<ServiceEnvelope>>>,
    /// Round-robin placement cursor, shared with every client.
    cursor: Arc<AtomicUsize>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ContainmentService {
    /// Spawn a [`ServicePool`] of `workers` supervised serve-loop threads
    /// (min 1), each behind its own bounded queue of `capacity` in-flight
    /// requests (min 1). The workers share this service (and through it the
    /// engine and all caches); they exit when every queue sender — the
    /// pool's plus every [`PoolClient`]'s — is dropped.
    ///
    /// Each worker runs under a supervisor: a panic while handling a
    /// request — injected or real — still answers that caller with
    /// [`ServiceError::Internal`], then the worker incarnation is respawned
    /// onto the same queue and the restart counted in
    /// [`ServiceStats::worker_restarts`]. A panicking request can poison
    /// locks it held; every service and engine lock recovers (see
    /// [`shapex_core::sync`]), so the respawned worker keeps serving.
    pub fn pool(&self, workers: usize, capacity: usize) -> ServicePool {
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        for worker in 0..workers.max(1) {
            let (sender, receiver) = mpsc::sync_channel(capacity.max(1));
            let receiver = Arc::new(Mutex::new(receiver));
            let service = self.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("shapex-service-{worker}"))
                    .spawn(move || service.supervise(worker, receiver))
                    .expect("spawn service supervisor"),
            );
            senders.push(sender);
        }
        ServicePool {
            service: self.clone(),
            senders: Arc::new(senders),
            cursor: Arc::new(AtomicUsize::new(0)),
            workers: handles,
        }
    }

    /// Supervisor body for one pool worker slot: spawn serve-loop
    /// incarnations over the slot's shared queue until one exits cleanly
    /// (every sender dropped), respawning — and counting — each one that
    /// panics. No request is lost across a restart:
    /// [`serve_shared`](ContainmentService::serve_shared) answers the
    /// in-flight caller with [`ServiceError::Internal`] before its panic
    /// propagates here, and queued envelopes survive in the shared
    /// receiver.
    fn supervise(&self, slot: usize, receiver: Arc<Mutex<mpsc::Receiver<ServiceEnvelope>>>) {
        for incarnation in 0u64.. {
            let service = self.clone();
            let queue = Arc::clone(&receiver);
            let worker = std::thread::Builder::new()
                .name(format!("shapex-service-{slot}-r{incarnation}"))
                .spawn(move || service.serve_shared(&queue))
                .expect("spawn service worker");
            if worker.join().is_ok() {
                return;
            }
            self.state.worker_restarts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One worker incarnation: drain the shared queue until it closes.
    /// Each request runs inside `catch_unwind`, so a panic still answers
    /// the caller (with [`ServiceError::Internal`]) before the unwind
    /// resumes and the supervisor respawns the incarnation.
    /// `AssertUnwindSafe` is justified the same way poison recovery is:
    /// everything the closure can leave mid-update is memoised or
    /// append-only state behind recovering locks (see
    /// [`shapex_core::sync`]).
    fn serve_shared(&self, receiver: &Mutex<mpsc::Receiver<ServiceEnvelope>>) {
        loop {
            // Hold the queue lock only to receive, so a panicking request
            // can never poison it mid-dispatch.
            let envelope = {
                let queue = lock_or_recover(receiver);
                match queue.recv() {
                    Ok(envelope) => envelope,
                    Err(_) => return,
                }
            };
            let ServiceEnvelope {
                tenant,
                request,
                reply,
                deadline,
            } = envelope;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                faults::trigger(faults::site::WORKER_DISPATCH);
                self.handle_with_deadline(tenant, request, deadline)
            }));
            match outcome {
                Ok(response) => {
                    let _ = reply.send(response.unwrap_or_else(ServiceResponse::from));
                }
                Err(payload) => {
                    // Answer the caller first, then let the supervisor see
                    // the panic and respawn this incarnation.
                    let _ = reply.send(ServiceResponse::Error(ServiceError::Internal));
                    resume_unwind(payload);
                }
            }
        }
    }
}

impl ServicePool {
    /// A client requesting as `tenant`. Clients are cheap to clone and
    /// outlive the pool value itself (they hold the queues alive); drop
    /// them all to let the workers exit.
    pub fn client(&self, tenant: TenantId) -> PoolClient {
        PoolClient {
            senders: Arc::clone(&self.senders),
            cursor: Arc::clone(&self.cursor),
            tenant,
            state: Arc::clone(&self.service.state),
        }
    }

    /// The shared service behind the pool.
    pub fn service(&self) -> &ContainmentService {
        &self.service
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Drop the pool's queue senders and block until every worker exits —
    /// which happens once all [`PoolClient`]s are dropped too, since clients
    /// keep the queues alive.
    pub fn join(self) {
        drop(self.senders);
        for worker in self.workers {
            worker.join().expect("service worker panicked");
        }
    }
}

/// A tenant's handle onto a [`ServicePool`]: like [`ServiceClient`], but
/// requests are placed round-robin across the pool's worker queues, rotating
/// past full ones. [`PoolClient::call`] rejects with
/// [`ServiceError::Overloaded`] only when every queue is full;
/// [`PoolClient::call_blocking`] parks on a queue instead.
#[derive(Debug, Clone)]
pub struct PoolClient {
    senders: Arc<Vec<mpsc::SyncSender<ServiceEnvelope>>>,
    cursor: Arc<AtomicUsize>,
    tenant: TenantId,
    state: Arc<ServiceState>,
}

impl PoolClient {
    /// The tenant this client requests as.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Send one request to the least-loaded-by-rotation worker and wait for
    /// its response. Fails fast with [`ServiceError::Overloaded`] (counted
    /// in the stats) when every worker queue is full, and with
    /// [`ServiceError::Disconnected`] when every worker has exited.
    pub fn call(&self, request: ServiceRequest) -> Result<ServiceResponse, ServiceError> {
        let (reply, responses) = mpsc::channel();
        let mut envelope = ServiceEnvelope {
            tenant: self.tenant,
            request,
            reply,
            deadline: None,
        };
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        let mut disconnected = 0;
        for offset in 0..self.senders.len() {
            let worker = &self.senders[(start + offset) % self.senders.len()];
            match worker.try_send(envelope) {
                Ok(()) => {
                    return ServiceClient::unfold(
                        responses.recv().map_err(|_| ServiceError::Disconnected)?,
                    )
                }
                // Rotate to the next queue, reclaiming the envelope the
                // failed send handed back.
                Err(mpsc::TrySendError::Full(e)) => envelope = e,
                Err(mpsc::TrySendError::Disconnected(e)) => {
                    envelope = e;
                    disconnected += 1;
                }
            }
        }
        if disconnected == self.senders.len() {
            return Err(ServiceError::Disconnected);
        }
        self.state.rejected.fetch_add(1, Ordering::Relaxed);
        Err(ServiceError::Overloaded)
    }

    /// Like [`PoolClient::call`], but when every queue is full, park on the
    /// round-robin pick instead of rejecting — for closed-loop producers
    /// that prefer waiting over shedding.
    ///
    /// **Hazard:** the park is *unbounded*, as is the wait for the reply —
    /// a wedged worker holds the caller forever. Interactive callers
    /// should use [`PoolClient::call_timeout`], which bounds both.
    pub fn call_blocking(&self, request: ServiceRequest) -> Result<ServiceResponse, ServiceError> {
        let (reply, responses) = mpsc::channel();
        let mut envelope = ServiceEnvelope {
            tenant: self.tenant,
            request,
            reply,
            deadline: None,
        };
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        // First pass: take any free slot without blocking.
        for offset in 0..self.senders.len() {
            let worker = &self.senders[(start + offset) % self.senders.len()];
            match worker.try_send(envelope) {
                Ok(()) => {
                    return ServiceClient::unfold(
                        responses.recv().map_err(|_| ServiceError::Disconnected)?,
                    )
                }
                Err(mpsc::TrySendError::Full(e)) | Err(mpsc::TrySendError::Disconnected(e)) => {
                    envelope = e
                }
            }
        }
        // All full (or gone): park on the round-robin pick.
        self.senders[start % self.senders.len()]
            .send(envelope)
            .map_err(|_| ServiceError::Disconnected)?;
        ServiceClient::unfold(responses.recv().map_err(|_| ServiceError::Disconnected)?)
    }

    /// Like [`ServiceClient::call_timeout`], across the pool: rotate over
    /// every worker queue, and only when *all* are full back off (bounded
    /// attempts, deterministic jitter, counted in [`ServiceStats::retries`]
    /// / [`ServiceStats::retry_gave_up`]) before rotating again. A reply
    /// that misses the budget is [`ServiceError::DeadlineExceeded`];
    /// engine-level expiries that answer in time arrive as
    /// [`ServiceResponse::Answer`] with an
    /// [`UnknownReason::DeadlineExceeded`] verdict.
    pub fn call_timeout(
        &self,
        request: ServiceRequest,
        timeout: Duration,
    ) -> Result<ServiceResponse, ServiceError> {
        let deadline = Instant::now()
            .checked_add(timeout)
            .expect("deadline overflows the monotonic clock");
        let (reply, responses) = mpsc::channel();
        let mut envelope = ServiceEnvelope {
            tenant: self.tenant,
            request,
            reply,
            deadline: Some(deadline),
        };
        let mut attempt = 0;
        'rounds: loop {
            let start = self.cursor.fetch_add(1, Ordering::Relaxed);
            let mut disconnected = 0;
            for offset in 0..self.senders.len() {
                let worker = &self.senders[(start + offset) % self.senders.len()];
                match worker.try_send(envelope) {
                    Ok(()) => break 'rounds,
                    Err(mpsc::TrySendError::Full(back)) => envelope = back,
                    Err(mpsc::TrySendError::Disconnected(back)) => {
                        envelope = back;
                        disconnected += 1;
                    }
                }
            }
            if disconnected == self.senders.len() {
                return Err(ServiceError::Disconnected);
            }
            let seed =
                (u64::from(self.tenant.0) << 32) ^ self.state.retries.load(Ordering::Relaxed);
            let Some(pause) = retry_backoff(seed, attempt, deadline) else {
                self.state.retry_gave_up.fetch_add(1, Ordering::Relaxed);
                self.state.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::Overloaded);
            };
            self.state.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(pause);
            attempt += 1;
        }
        ServiceClient::recv_deadline(&responses, deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_shex::parse_schema;

    fn ids_of(service: &ContainmentService, tenant: TenantId, texts: &[&str]) -> Vec<SchemaId> {
        texts
            .iter()
            .map(|t| {
                let request = ServiceRequest::Register(Box::new(parse_schema(t).unwrap()));
                match service.handle(tenant, request) {
                    Ok(ServiceResponse::Registered(id)) => id,
                    other => panic!("expected Registered, got {other:?}"),
                }
            })
            .collect()
    }

    #[test]
    fn request_response_round_trip() {
        let service = ContainmentService::new();
        let ids = ids_of(
            &service,
            TenantId::DEFAULT,
            &["T -> p::L?\nL -> EMPTY\n", "T -> p::L*\nL -> EMPTY\n"],
        );
        match service.handle(
            TenantId::DEFAULT,
            ServiceRequest::Check {
                h: ids[0],
                k: ids[1],
            },
        ) {
            Ok(ServiceResponse::Answer(answer)) => {
                assert!(answer.is_contained(), "? widens to *")
            }
            other => panic!("expected Answer, got {other:?}"),
        }
        match service.handle(TenantId::DEFAULT, ServiceRequest::Matrix(ids.clone())) {
            Ok(ServiceResponse::Matrix(matrix)) => {
                assert_eq!(matrix.len(), 2);
                assert!(matrix[1][0].is_not_contained(), "* does not narrow to ?");
                assert_eq!(matrix.ids(), &ids[..]);
            }
            other => panic!("expected Matrix, got {other:?}"),
        }
        match service.handle(TenantId::DEFAULT, ServiceRequest::Stats) {
            Ok(ServiceResponse::Stats(stats)) => {
                assert_eq!(stats.engine.schemas, 2);
                assert_eq!(stats.tenants, 1);
                assert_eq!(stats.rejected, 0);
                assert!(stats.latency.count() >= 4, "every request is recorded");
                assert!(format!("{stats}").contains("latency"));
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn foreign_handles_get_an_error_not_a_panic() {
        let service = ContainmentService::new();
        let ids = ids_of(&service, TenantId::DEFAULT, &["T -> p::L?\nL -> EMPTY\n"]);
        let other = ContainmentService::new();
        let foreign = ids_of(
            &other,
            TenantId::DEFAULT,
            &["A -> q::B\nB -> EMPTY\n", "B -> EMPTY\n"],
        )[1];
        match service.handle(
            TenantId::DEFAULT,
            ServiceRequest::Check {
                h: ids[0],
                k: foreign,
            },
        ) {
            Err(ServiceError::UnknownHandle { registered, .. }) => assert_eq!(registered, 1),
            other => panic!("expected UnknownHandle, got {other:?}"),
        }
    }

    #[test]
    fn tenants_cannot_use_each_others_handles() {
        let service = ContainmentService::new();
        let blue = service.create_tenant();
        let green = service.create_tenant();
        assert_eq!(service.tenant_count(), 3, "default + two minted");
        let blue_ids = ids_of(
            &service,
            blue,
            &["T -> p::L?\nL -> EMPTY\n", "T -> p::L*\nL -> EMPTY\n"],
        );
        // Green presenting blue's handle: range-valid, scope-invalid.
        match service.handle(
            green,
            ServiceRequest::Check {
                h: blue_ids[0],
                k: blue_ids[1],
            },
        ) {
            Err(ServiceError::WrongTenant { id, tenant }) => {
                assert_eq!(id, blue_ids[0]);
                assert_eq!(tenant, green);
            }
            other => panic!("expected WrongTenant, got {other:?}"),
        }
        // Green registering the same schema interns onto blue's engine
        // entry — same handle, now valid for both tenants.
        let green_ids = ids_of(&service, green, &["T -> p::L?\nL -> EMPTY\n"]);
        assert_eq!(green_ids[0], blue_ids[0], "interned across tenants");
        assert_eq!(service.engine().schema_count(), 2);
        // An unknown tenant is refused outright.
        let ghost = TenantId(99);
        match service.handle(
            ghost,
            ServiceRequest::Register(Box::new(parse_schema("T -> EMPTY\n").unwrap())),
        ) {
            Err(ServiceError::UnknownTenant(t)) => assert_eq!(t, ghost),
            other => panic!("expected UnknownTenant, got {other:?}"),
        }
        // Errors render and fold into responses.
        let folded = ServiceResponse::from(ServiceError::Overloaded);
        assert!(matches!(
            folded,
            ServiceResponse::Error(ServiceError::Overloaded)
        ));
        assert!(format!("{}", ServiceError::Overloaded).contains("queue is full"));
    }

    #[test]
    fn serve_loop_answers_concurrent_clients() {
        let service = ContainmentService::new();
        let (client, requests) = service.connect(TenantId::DEFAULT, 64);
        std::thread::scope(|scope| {
            let server = {
                let service = service.clone();
                scope.spawn(move || service.serve(requests))
            };
            let texts = ["T -> p::L?\nL -> EMPTY\n", "T -> p::L\nL -> EMPTY\n"];
            let mut workers = Vec::new();
            for _ in 0..3 {
                let client = client.clone();
                workers.push(scope.spawn(move || {
                    let mut ids = Vec::new();
                    for t in texts {
                        let request = ServiceRequest::Register(Box::new(parse_schema(t).unwrap()));
                        match client.call_blocking(request).unwrap() {
                            ServiceResponse::Registered(id) => ids.push(id),
                            other => panic!("expected Registered, got {other:?}"),
                        }
                    }
                    match client
                        .call(ServiceRequest::Check {
                            h: ids[1],
                            k: ids[0],
                        })
                        .unwrap()
                    {
                        ServiceResponse::Answer(answer) => {
                            assert!(answer.is_contained(), "1 is within ?")
                        }
                        other => panic!("expected Answer, got {other:?}"),
                    }
                }));
            }
            for worker in workers {
                worker.join().unwrap();
            }
            drop(client); // all clients hung up; the server returns
            server.join().unwrap();
        });
        // Identical registrations from all clients interned onto one pair.
        assert_eq!(service.engine().schema_count(), 2);
        assert!(service.stats().latency.count() >= 9);
    }

    /// The evolving-graph fixture: `u1` with a `name` and an `email` edge
    /// satisfies `User`; drop the email edge and `u1` satisfies nothing
    /// (it still has an edge, so `Literal -> EMPTY` is out of reach too).
    const USER_SCHEMA: &str = "User -> name::Literal, email::Literal\nLiteral -> EMPTY\n";

    fn user_schema_id(service: &ContainmentService, tenant: TenantId) -> SchemaId {
        ids_of(service, tenant, &[USER_SCHEMA])[0]
    }

    fn load(
        service: &ContainmentService,
        tenant: TenantId,
        graph: Option<GraphId>,
        chunk: &[u8],
    ) -> Result<(GraphId, u64, DeltaReport), ServiceError> {
        match service.handle(
            tenant,
            ServiceRequest::LoadTriples {
                graph,
                chunk: chunk.to_vec(),
            },
        )? {
            ServiceResponse::Loaded {
                graph,
                triples,
                report,
            } => Ok((graph, triples, *report)),
            other => panic!("expected Loaded, got {other:?}"),
        }
    }

    fn revalidate(
        service: &ContainmentService,
        tenant: TenantId,
        graph: GraphId,
        schema: SchemaId,
    ) -> (bool, usize) {
        match service.handle(tenant, ServiceRequest::Revalidate { graph, schema }) {
            Ok(ServiceResponse::Validation {
                valid, affected, ..
            }) => (valid, affected),
            other => panic!("expected Validation, got {other:?}"),
        }
    }

    #[test]
    fn streamed_chunks_assemble_lines_split_anywhere() {
        let service = ContainmentService::new();
        let schema = user_schema_id(&service, TenantId::DEFAULT);
        let doc = b"<u1> <name> \"n\" .\n<u1> <email> \"e\" .";
        // First chunk ends mid-way through the second statement; the last
        // statement has no trailing newline, so only the empty-chunk flush
        // completes it.
        let (graph, triples, report) = load(&service, TenantId::DEFAULT, None, &doc[..25]).unwrap();
        assert_eq!(triples, 1);
        assert_eq!(report.added_edges, 1);
        assert_eq!(report.added_nodes, 2, "u1 and the literal");
        let (_, triples, report) =
            load(&service, TenantId::DEFAULT, Some(graph), &doc[25..]).unwrap();
        assert_eq!(triples, 1, "the unterminated line stays buffered");
        assert_eq!(report.added_edges, 0);
        let (_, triples, report) = load(&service, TenantId::DEFAULT, Some(graph), b"").unwrap();
        assert_eq!(triples, 2, "the flush completes the final statement");
        assert_eq!(report.added_edges, 1);
        let (valid, affected) = revalidate(&service, TenantId::DEFAULT, graph, schema);
        assert!(valid, "name + email satisfy User");
        assert_eq!(affected, 0, "a fresh typing consumes no dirty log");
        assert_eq!(service.stats().graphs, 1);
        assert!(format!("{}", service.stats()).contains("1 graphs"));
    }

    #[test]
    fn deltas_revalidate_incrementally_and_converge() {
        let service = ContainmentService::new();
        let schema = user_schema_id(&service, TenantId::DEFAULT);
        let doc = b"<u1> <name> \"n\" .\n<u1> <email> \"e\" .\n";
        let (graph, ..) = load(&service, TenantId::DEFAULT, None, doc).unwrap();
        assert!(revalidate(&service, TenantId::DEFAULT, graph, schema).0);
        // Dropping the email edge leaves u1 satisfying nothing.
        let mut delta = GraphDelta::new();
        delta.remove_edge("u1", "email", "\"e\"");
        match service.handle(
            TenantId::DEFAULT,
            ServiceRequest::ApplyDelta {
                graph,
                delta: Box::new(delta),
            },
        ) {
            Ok(ServiceResponse::Applied { report, .. }) => {
                assert_eq!(report.removed_edges, 1);
                assert_eq!(report.dirty.len(), 1, "only the source is dirty");
            }
            other => panic!("expected Applied, got {other:?}"),
        }
        let (valid, affected) = revalidate(&service, TenantId::DEFAULT, graph, schema);
        assert!(!valid, "without the email edge u1 has no type");
        assert!(affected >= 1, "the dirty region was re-examined");
        // Restoring the edge restores validity, still incrementally.
        let mut delta = GraphDelta::new();
        delta.add_edge("u1", "email", "\"e\"");
        service
            .handle(
                TenantId::DEFAULT,
                ServiceRequest::ApplyDelta {
                    graph,
                    delta: Box::new(delta),
                },
            )
            .unwrap();
        let (valid, affected) = revalidate(&service, TenantId::DEFAULT, graph, schema);
        assert!(valid);
        assert!(affected >= 1);
        // No edits since: the retained typing answers without recomputing.
        assert_eq!(
            revalidate(&service, TenantId::DEFAULT, graph, schema),
            (true, 0)
        );
    }

    #[test]
    fn graph_handles_are_tenant_scoped_without_existence_leaks() {
        let service = ContainmentService::new();
        let blue = service.create_tenant();
        let green = service.create_tenant();
        let (graph, ..) = load(&service, blue, None, b"<a> <p> <b> .\n").unwrap();
        // Green presenting blue's handle and anyone presenting a
        // never-issued handle get the same error.
        match load(&service, green, Some(graph), b"<c> <p> <d> .\n") {
            Err(ServiceError::UnknownGraph(id)) => assert_eq!(id, graph),
            other => panic!("expected UnknownGraph, got {other:?}"),
        }
        let ghost = GraphId(99);
        match service.handle(
            blue,
            ServiceRequest::ApplyDelta {
                graph: ghost,
                delta: Box::new(GraphDelta::new()),
            },
        ) {
            Err(ServiceError::UnknownGraph(id)) => assert_eq!(id, ghost),
            other => panic!("expected UnknownGraph, got {other:?}"),
        }
        assert!(format!("{}", ServiceError::UnknownGraph(ghost)).contains("graph#99"));
    }

    #[test]
    fn parse_errors_report_the_line_and_allow_resuming() {
        let service = ContainmentService::new();
        let (graph, ..) = load(&service, TenantId::DEFAULT, None, b"<a> <p> <b> .\n").unwrap();
        match load(&service, TenantId::DEFAULT, Some(graph), b"not ntriples\n") {
            Err(ServiceError::Parse { line, message, .. }) => {
                assert_eq!(line, 2, "lines count across chunks");
                assert!(!message.is_empty());
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        // The parser was reset: streaming resumes on a clean line boundary
        // and the graph still holds everything accepted before the error.
        let (_, _, report) =
            load(&service, TenantId::DEFAULT, Some(graph), b"<a> <q> <c> .\n").unwrap();
        assert_eq!(report.added_edges, 1);
        assert_eq!(report.added_nodes, 1, "a and b survived the bad chunk");
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let service = ContainmentService::new();
        // Capacity-1 queue with no server draining it: the first request
        // parks in the queue, the second must be rejected, not queued.
        let (client, _requests) = service.connect(TenantId::DEFAULT, 1);
        let fire = || {
            let (reply, _responses) = mpsc::channel();
            ServiceEnvelope {
                tenant: TenantId::DEFAULT,
                request: ServiceRequest::Stats,
                reply,
                deadline: None,
            }
        };
        // Fill the queue directly (client.call would block on recv).
        client.sender().try_send(fire()).unwrap();
        match client.call(ServiceRequest::Stats) {
            Err(ServiceError::Overloaded) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(service.stats().rejected, 1, "rejections are counted");
        // Dropping the receiver turns sends into Disconnected, not hangs.
        drop(_requests);
        match client.call(ServiceRequest::Stats) {
            Err(ServiceError::Disconnected) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn pool_answers_concurrent_clients_across_workers() {
        let service = ContainmentService::new();
        let pool = service.pool(3, 4);
        assert_eq!(pool.workers(), 3);
        assert_eq!(pool.service().tenant_count(), 1);
        let texts = ["T -> p::L?\nL -> EMPTY\n", "T -> p::L\nL -> EMPTY\n"];
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let client = pool.client(TenantId::DEFAULT);
                scope.spawn(move || {
                    let mut ids = Vec::new();
                    for t in texts {
                        let request = ServiceRequest::Register(Box::new(parse_schema(t).unwrap()));
                        match client.call_blocking(request).unwrap() {
                            ServiceResponse::Registered(id) => ids.push(id),
                            other => panic!("expected Registered, got {other:?}"),
                        }
                    }
                    match client
                        .call_blocking(ServiceRequest::Check {
                            h: ids[1],
                            k: ids[0],
                        })
                        .unwrap()
                    {
                        ServiceResponse::Answer(answer) => {
                            assert!(answer.is_contained(), "1 is within ?")
                        }
                        other => panic!("expected Answer, got {other:?}"),
                    }
                });
            }
        });
        // Identical registrations from every client (landing on different
        // workers) interned onto one engine pair.
        assert_eq!(service.engine().schema_count(), 2);
        assert!(service.stats().latency.count() >= 12);
        // All clients hung up at scope end; join drains the workers.
        pool.join();
    }

    #[test]
    fn pool_client_rotates_past_full_queues_and_rejects_only_when_all_full() {
        let service = ContainmentService::new();
        // A hand-wired two-worker pool client whose queues (capacity 1) we
        // hold the receiving ends of, so fullness is deterministic.
        let (sender_a, receiver_a) = mpsc::sync_channel(1);
        let (sender_b, receiver_b) = mpsc::sync_channel(1);
        let client = PoolClient {
            senders: Arc::new(vec![sender_a, sender_b]),
            cursor: Arc::new(AtomicUsize::new(0)),
            tenant: TenantId::DEFAULT,
            state: Arc::clone(&service.state),
        };
        let fire = || {
            let (reply, _responses) = mpsc::channel();
            ServiceEnvelope {
                tenant: TenantId::DEFAULT,
                request: ServiceRequest::Stats,
                reply,
                deadline: None,
            }
        };
        // Fill queue A. The client's round-robin pick (cursor 0) is full,
        // so the request must rotate onto B — serve that one envelope.
        client.senders[0].try_send(fire()).unwrap();
        std::thread::scope(|scope| {
            let server = {
                let service = service.clone();
                scope.spawn(move || {
                    let envelope = receiver_b.recv().unwrap();
                    let response = service
                        .handle(envelope.tenant, envelope.request)
                        .unwrap_or_else(ServiceResponse::from);
                    envelope.reply.send(response).unwrap();
                    receiver_b // keep B's queue alive past this one answer
                })
            };
            match client.call(ServiceRequest::Stats) {
                Ok(ServiceResponse::Stats(_)) => {}
                other => panic!("expected Stats via worker B, got {other:?}"),
            }
            let receiver_b = server.join().unwrap();
            // Now fill B as well: with every queue full the client rejects
            // fast, and the rejection is counted once.
            client.senders[1].try_send(fire()).unwrap();
            match client.call(ServiceRequest::Stats) {
                Err(ServiceError::Overloaded) => {}
                other => panic!("expected Overloaded, got {other:?}"),
            }
            assert_eq!(service.stats().rejected, 1, "one rejection counted");
            // Workers gone (receivers dropped): Disconnected, not Overloaded,
            // and no extra rejection tick.
            drop(receiver_a);
            drop(receiver_b);
            match client.call(ServiceRequest::Stats) {
                Err(ServiceError::Disconnected) => {}
                other => panic!("expected Disconnected, got {other:?}"),
            }
            assert_eq!(
                service.stats().rejected,
                1,
                "disconnects are not rejections"
            );
        });
    }

    /// The Figure-1 anchor pair: no embedding, no counter-example — the
    /// search exhausts the default budget, so a short deadline reliably
    /// expires mid-search.
    const FIG1_ORIGINAL: &str = "Bug  -> descr::Literal, reportedBy::User, related::Bug*\n\
         User -> name::Literal, email::Literal?\n";
    const FIG1_SPLIT: &str =
        "Bug1 -> descr::Literal, reportedBy::User1, related::Bug1*, related::Bug2*\n\
         Bug2 -> descr::Literal, reportedBy::User2, related::Bug1*, related::Bug2*\n\
         User1 -> name::Literal\n\
         User2 -> name::Literal, email::Literal\n";

    #[test]
    fn deadlines_surface_as_typed_answers_in_the_timeout_histogram() {
        let service = ContainmentService::new();
        let ids = ids_of(&service, TenantId::DEFAULT, &[FIG1_ORIGINAL, FIG1_SPLIT]);
        let check = ServiceRequest::Check {
            h: ids[0],
            k: ids[1],
        };
        // Already expired: refused before the engine runs.
        match service.handle_with_deadline(TenantId::DEFAULT, check.clone(), Some(Instant::now())) {
            Err(ServiceError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // Expiring mid-search: a typed Unknown verdict, never a hang.
        let soon = Instant::now() + Duration::from_millis(2);
        match service.handle_with_deadline(TenantId::DEFAULT, check, Some(soon)) {
            Ok(ServiceResponse::Answer(answer)) => assert!(
                matches!(
                    answer.unknown_reason(),
                    Some(UnknownReason::DeadlineExceeded { .. })
                ),
                "expected a deadline verdict, got {answer:?}"
            ),
            other => panic!("expected Answer, got {other:?}"),
        }
        let stats = service.stats();
        assert_eq!(stats.timeouts.count(), 2, "both expiries are timeouts");
        assert_eq!(
            stats.latency.count(),
            2,
            "registrations stay in the main histogram"
        );
        assert!(
            stats.engine.deadline_exceeded >= 1,
            "the engine counted the expiry"
        );
        assert!(format!("{stats}").contains("timeouts:"));
    }

    #[test]
    fn call_timeout_retries_overload_and_bounds_the_wait() {
        let service = ContainmentService::new();
        // Capacity-1 queue, nothing draining it: every retry finds it still
        // full and the loop gives up with a typed rejection.
        let (client, _requests) = service.connect(TenantId::DEFAULT, 1);
        let fire = || {
            let (reply, _responses) = mpsc::channel();
            ServiceEnvelope {
                tenant: TenantId::DEFAULT,
                request: ServiceRequest::Stats,
                reply,
                deadline: None,
            }
        };
        client.sender().try_send(fire()).unwrap();
        match client.call_timeout(ServiceRequest::Stats, Duration::from_millis(250)) {
            Err(ServiceError::Overloaded) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        let stats = service.stats();
        assert_eq!(
            stats.retries,
            RETRY_ATTEMPTS - 1,
            "every backoff slot was used"
        );
        assert_eq!(stats.retry_gave_up, 1);
        assert_eq!(stats.rejected, 1);
        // A free slot but still no server: the bounded reply wait expires
        // typed instead of parking forever.
        let (client, _requests) = service.connect(TenantId::DEFAULT, 4);
        match client.call_timeout(ServiceRequest::Stats, Duration::from_millis(5)) {
            Err(ServiceError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(
            service.stats().timeouts.count(),
            0,
            "client-side expiry; server never ran"
        );
    }

    #[test]
    fn retry_backoff_is_deterministic_and_bounded() {
        let deadline = Instant::now() + Duration::from_secs(60);
        let a: Vec<_> = (0..RETRY_ATTEMPTS)
            .map(|i| retry_backoff(7, i, deadline))
            .collect();
        let b: Vec<_> = (0..RETRY_ATTEMPTS)
            .map(|i| retry_backoff(7, i, deadline))
            .collect();
        assert_eq!(a, b, "equal (seed, attempt) pairs pause equally");
        assert!(a[..(RETRY_ATTEMPTS - 1) as usize]
            .iter()
            .all(Option::is_some));
        assert_eq!(
            a[(RETRY_ATTEMPTS - 1) as usize],
            None,
            "attempts are bounded"
        );
        // An imminent deadline suppresses the pause entirely.
        assert_eq!(retry_backoff(7, 0, Instant::now()), None);
    }

    /// Chaos tests arm the process-global fault registry; they exist only
    /// under `--features failpoints` and serialise on a local gate.
    #[cfg(feature = "failpoints")]
    mod chaos {
        use super::*;
        use shapex_core::faults::{self, site, FaultAction, FaultPlan};
        use std::sync::PoisonError;

        static GATE: Mutex<()> = Mutex::new(());

        #[test]
        fn panicking_worker_answers_internal_and_is_respawned() {
            let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
            let service = ContainmentService::new();
            let pool = service.pool(1, 4);
            let client = pool.client(TenantId::DEFAULT);
            faults::install(FaultPlan::new().inject(site::WORKER_DISPATCH, 0, FaultAction::Panic));
            match client.call_blocking(ServiceRequest::Stats) {
                Err(ServiceError::Internal) => {}
                other => panic!("expected Internal, got {other:?}"),
            }
            faults::clear();
            // The respawned incarnation keeps draining the same queue.
            match client.call_blocking(ServiceRequest::Stats) {
                Ok(ServiceResponse::Stats(stats)) => {
                    assert_eq!(stats.worker_restarts, 1);
                    assert!(format!("{stats}").contains("1 worker restarts"));
                }
                other => panic!("expected Stats, got {other:?}"),
            }
            drop(client);
            pool.join();
        }

        #[test]
        fn injected_post_parse_panic_never_wedges_the_service() {
            let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
            let service = ContainmentService::new();
            let pool = service.pool(2, 4);
            let client = pool.client(TenantId::DEFAULT);
            faults::install(FaultPlan::new().inject(site::POST_PARSE, 0, FaultAction::Panic));
            let schema = parse_schema("T -> p::L?\nL -> EMPTY\n").unwrap();
            match client.call_blocking(ServiceRequest::Register(Box::new(schema.clone()))) {
                Err(ServiceError::Internal) => {}
                other => panic!("expected Internal, got {other:?}"),
            }
            faults::clear();
            // Nothing was half-registered: the retry lands cleanly on the
            // recovered service and the engine holds exactly one schema.
            match client.call_blocking(ServiceRequest::Register(Box::new(schema))) {
                Ok(ServiceResponse::Registered(_)) => {}
                other => panic!("expected Registered, got {other:?}"),
            }
            assert_eq!(service.engine().schema_count(), 1);
            match client.call_blocking(ServiceRequest::Stats) {
                Ok(ServiceResponse::Stats(stats)) => assert_eq!(stats.worker_restarts, 1),
                other => panic!("expected Stats, got {other:?}"),
            }
            drop(client);
            pool.join();
        }
    }
}
