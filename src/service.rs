//! A long-lived containment service wrapping a shared
//! [`ContainmentEngine`].
//!
//! The engine is the seam a service wraps: every query method takes `&self`
//! over concurrent caches, so one engine behind an [`Arc`] serves any number
//! of clients, amortizing shape graphs, unfolding pools, and validation
//! verdicts across all of their queries. [`ContainmentService`] packages
//! that seam as a request/response protocol:
//!
//! * **Registration is the upload endpoint.** Clients submit a
//!   [`Schema`] once ([`ServiceRequest::Register`]) and hold the returned
//!   [`SchemaId`] — structurally identical schemas (even from different
//!   clients) intern onto one handle and share every cache.
//! * **Queries go by handle.** [`ServiceRequest::Check`] answers one
//!   ordered pair; [`ServiceRequest::Matrix`] answers the full N×N batch
//!   (row-parallel when the engine's [`EngineOptions::matrix_threads`]
//!   allows), without re-shipping schema texts.
//! * **[`EngineStats`] is the metrics surface.** [`ServiceRequest::Stats`]
//!   snapshots the cache hit/miss counters; its `Display` rendering is the
//!   metrics line to log or scrape.
//!
//! The protocol is deliberately synchronous and transport-agnostic:
//! [`ContainmentService::handle`] maps one request to one response, and
//! [`ContainmentService::serve`] runs that mapping as a blocking loop over
//! an [`mpsc`] channel of envelopes — the shape `examples/containment_service.rs`
//! demonstrates with one server thread and several concurrent clients.
//! Because the service is [`Clone`] (it clones the inner [`Arc`]), the same
//! engine can also sit behind several server threads at once.

use std::sync::{mpsc, Arc};

use shapex_core::engine::{ContainmentEngine, EngineOptions, EngineStats, SchemaId};
use shapex_core::Containment;
use shapex_shex::Schema;

// One service handle is shared across server and client threads.
shapex_graph::assert_send_sync!(ContainmentService, ServiceRequest, ServiceResponse);

/// A request to a [`ContainmentService`].
///
/// The enum is the service's wire format: everything a client can ask for,
/// self-contained (schemas travel by value on registration, by [`SchemaId`]
/// handle afterwards).
#[derive(Debug, Clone)]
pub enum ServiceRequest {
    /// Register a schema, interning structurally identical submissions onto
    /// one handle. Answered with [`ServiceResponse::Registered`]. Boxed:
    /// a `Schema` is hundreds of bytes, and requests travel through queues
    /// sized for the smallest variants.
    Register(Box<Schema>),
    /// Decide `L(h) ⊆ L(k)` for two registered handles. Answered with
    /// [`ServiceResponse::Answer`] (or [`ServiceResponse::Error`] for a
    /// handle this service never issued).
    Check {
        /// The candidate sub-schema.
        h: SchemaId,
        /// The candidate super-schema.
        k: SchemaId,
    },
    /// The full pairwise containment matrix over registered handles.
    /// Answered with [`ServiceResponse::Matrix`].
    Matrix(Vec<SchemaId>),
    /// Snapshot the engine's cache-effectiveness counters. Answered with
    /// [`ServiceResponse::Stats`].
    Stats,
}

/// A response from a [`ContainmentService`], one per [`ServiceRequest`].
#[derive(Debug, Clone)]
pub enum ServiceResponse {
    /// The handle for a registered schema.
    Registered(SchemaId),
    /// The answer to a [`ServiceRequest::Check`].
    Answer(Containment),
    /// The answer to a [`ServiceRequest::Matrix`]: `matrix[i][j]` decides
    /// `L(ids[i]) ⊆ L(ids[j])`.
    Matrix(Vec<Vec<Containment>>),
    /// The counters snapshot for a [`ServiceRequest::Stats`].
    Stats(EngineStats),
    /// The request was malformed (e.g. an unregistered [`SchemaId`]); the
    /// service stays up and the message says what was wrong.
    Error(String),
}

/// One queued request plus the channel its response goes back on — the
/// envelope [`ContainmentService::serve`] consumes.
pub type ServiceEnvelope = (ServiceRequest, mpsc::Sender<ServiceResponse>);

/// A long-lived containment session behind a request/response protocol; see
/// the [module docs](self). Cloning is cheap (an [`Arc`] bump) and clones
/// share the engine, so one service can be driven from many threads.
#[derive(Debug, Clone)]
pub struct ContainmentService {
    engine: Arc<ContainmentEngine>,
}

impl Default for ContainmentService {
    fn default() -> Self {
        ContainmentService::new()
    }
}

impl ContainmentService {
    /// A service over a fresh engine with default options.
    pub fn new() -> ContainmentService {
        ContainmentService::with_options(EngineOptions::default())
    }

    /// A service over a fresh engine with the given options (the search
    /// budget is fixed for the service's lifetime, like any engine).
    pub fn with_options(options: EngineOptions) -> ContainmentService {
        ContainmentService::from_engine(Arc::new(ContainmentEngine::with_options(options)))
    }

    /// Wrap an existing shared engine — e.g. one that local code also
    /// queries directly while the service exposes it to other threads.
    pub fn from_engine(engine: Arc<ContainmentEngine>) -> ContainmentService {
        ContainmentService { engine }
    }

    /// The shared engine behind the service.
    pub fn engine(&self) -> &Arc<ContainmentEngine> {
        &self.engine
    }

    /// Answer one request. Pure dispatch onto the engine: safe to call from
    /// any number of threads at once, with or without
    /// [`serve`](ContainmentService::serve) running elsewhere.
    pub fn handle(&self, request: ServiceRequest) -> ServiceResponse {
        match request {
            ServiceRequest::Register(schema) => {
                ServiceResponse::Registered(self.engine.register(&schema))
            }
            ServiceRequest::Check { h, k } => match self.checked(h).and(self.checked(k)) {
                Ok(()) => ServiceResponse::Answer(self.engine.check_ids(h, k)),
                Err(e) => e,
            },
            ServiceRequest::Matrix(ids) => {
                if let Some(Err(e)) = ids.iter().map(|&id| self.checked(id)).find(Result::is_err) {
                    return e;
                }
                ServiceResponse::Matrix(self.engine.check_matrix_ids(&ids))
            }
            ServiceRequest::Stats => ServiceResponse::Stats(self.engine.stats()),
        }
    }

    /// The synchronous request loop: answer every envelope until all request
    /// senders are dropped, then return. A client that hung up before its
    /// response arrived is skipped silently. Run it on a dedicated thread
    /// (or several — clones share the engine) and hand clients the sender
    /// side of the channel.
    pub fn serve(&self, requests: mpsc::Receiver<ServiceEnvelope>) {
        for (request, reply) in requests {
            let _ = reply.send(self.handle(request));
        }
    }

    /// Range-check a client-supplied handle.
    fn checked(&self, id: SchemaId) -> Result<(), ServiceResponse> {
        if self.engine.is_registered(id) {
            Ok(())
        } else {
            Err(ServiceResponse::Error(format!(
                "unknown schema handle {id:?} (this service has {} registered)",
                self.engine.schema_count()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_shex::parse_schema;

    fn ids_of(service: &ContainmentService, texts: &[&str]) -> Vec<SchemaId> {
        texts
            .iter()
            .map(|t| {
                match service.handle(ServiceRequest::Register(Box::new(parse_schema(t).unwrap()))) {
                    ServiceResponse::Registered(id) => id,
                    other => panic!("expected Registered, got {other:?}"),
                }
            })
            .collect()
    }

    #[test]
    fn request_response_round_trip() {
        let service = ContainmentService::new();
        let ids = ids_of(
            &service,
            &["T -> p::L?\nL -> EMPTY\n", "T -> p::L*\nL -> EMPTY\n"],
        );
        match service.handle(ServiceRequest::Check {
            h: ids[0],
            k: ids[1],
        }) {
            ServiceResponse::Answer(answer) => assert!(answer.is_contained(), "? widens to *"),
            other => panic!("expected Answer, got {other:?}"),
        }
        match service.handle(ServiceRequest::Matrix(ids.clone())) {
            ServiceResponse::Matrix(matrix) => {
                assert_eq!(matrix.len(), 2);
                assert!(matrix[1][0].is_not_contained(), "* does not narrow to ?");
            }
            other => panic!("expected Matrix, got {other:?}"),
        }
        match service.handle(ServiceRequest::Stats) {
            ServiceResponse::Stats(stats) => assert_eq!(stats.schemas, 2),
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn foreign_handles_get_an_error_not_a_panic() {
        let service = ContainmentService::new();
        let ids = ids_of(&service, &["T -> p::L?\nL -> EMPTY\n"]);
        let other = ContainmentService::new();
        let foreign = ids_of(&other, &["A -> q::B\nB -> EMPTY\n", "B -> EMPTY\n"])[1];
        match service.handle(ServiceRequest::Check {
            h: ids[0],
            k: foreign,
        }) {
            ServiceResponse::Error(message) => {
                assert!(message.contains("unknown schema handle"), "{message}")
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn serve_loop_answers_concurrent_clients() {
        let service = ContainmentService::new();
        let (tx, rx) = mpsc::channel::<ServiceEnvelope>();
        std::thread::scope(|scope| {
            let server = {
                let service = service.clone();
                scope.spawn(move || service.serve(rx))
            };
            let texts = ["T -> p::L?\nL -> EMPTY\n", "T -> p::L\nL -> EMPTY\n"];
            for _ in 0..3 {
                let tx = tx.clone();
                scope.spawn(move || {
                    let (reply_tx, reply_rx) = mpsc::channel();
                    let mut ids = Vec::new();
                    for t in texts {
                        tx.send((
                            ServiceRequest::Register(Box::new(parse_schema(t).unwrap())),
                            reply_tx.clone(),
                        ))
                        .unwrap();
                        match reply_rx.recv().unwrap() {
                            ServiceResponse::Registered(id) => ids.push(id),
                            other => panic!("expected Registered, got {other:?}"),
                        }
                    }
                    tx.send((
                        ServiceRequest::Check {
                            h: ids[1],
                            k: ids[0],
                        },
                        reply_tx.clone(),
                    ))
                    .unwrap();
                    match reply_rx.recv().unwrap() {
                        ServiceResponse::Answer(answer) => {
                            assert!(answer.is_contained(), "1 is within ?")
                        }
                        other => panic!("expected Answer, got {other:?}"),
                    }
                });
            }
            drop(tx); // all clients eventually hang up; the server returns
            server.join().unwrap();
        });
        // Identical registrations from all clients interned onto one pair.
        assert_eq!(service.engine().schema_count(), 2);
    }
}
