//! Dependency-free latency metrics for the [`crate::service`]: a fixed,
//! log-spaced histogram of request latencies.
//!
//! [`LatencyHistogram`] is the live, lock-free recorder — an array of
//! [`AtomicU64`] buckets whose upper bounds are successive powers of two in
//! microseconds (1 µs, 2 µs, 4 µs, … ≈ 134 s, plus one overflow bucket), the
//! classic log-spaced layout of production latency metrics: constant memory,
//! constant-time recording from any thread, and quantile error bounded by a
//! factor of two. [`LatencySnapshot`] is the immutable copy a stats endpoint
//! hands out, with [`LatencySnapshot::quantile`] and a `Display` rendering
//! of the p50/p90/p99 line.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: bucket `i < BUCKETS - 1` counts latencies
/// `≤ 2^i` µs; the last bucket counts everything larger (≈ over 2 minutes).
const BUCKETS: usize = 28;

/// A log-spaced latency histogram over atomic buckets; see the
/// [module docs](self). Recording is wait-free and `&self`, so one
/// histogram serves every server thread.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// The bucket index of a latency: the smallest `i` with
    /// `micros ≤ 2^i`, clamped into the overflow bucket.
    fn bucket_of(latency: Duration) -> usize {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        // Zero and one microsecond both land in bucket 0 (upper bound 1 µs).
        let index = 64 - micros.max(1).leading_zeros() as usize - 1;
        let rounded_up = if micros.is_power_of_two() || micros == 0 {
            index
        } else {
            index + 1
        };
        rounded_up.min(BUCKETS - 1)
    }

    /// The upper bound of a bucket, in microseconds (`None` for the
    /// overflow bucket).
    fn upper_micros(bucket: usize) -> Option<u64> {
        (bucket < BUCKETS - 1).then(|| 1u64 << bucket)
    }

    /// Record one request latency.
    pub fn record(&self, latency: Duration) {
        self.buckets[Self::bucket_of(latency)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let nanos = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// An immutable copy of the current counts. Buckets are read one by one
    /// (relaxed), so a snapshot racing a recording may be off by that one
    /// sample — fine for metrics.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
        }
    }
}

/// An immutable latency distribution, as captured by
/// [`LatencyHistogram::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_nanos: u64,
}

impl LatencySnapshot {
    /// Total requests recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (`None` when nothing was recorded).
    pub fn mean(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_nanos(self.sum_nanos / self.count))
    }

    /// The latency below which a `q` fraction of requests fell, reported as
    /// the matching bucket's upper bound — an over-estimate by at most 2×,
    /// the usual contract of a log-spaced histogram. `None` when nothing
    /// was recorded. `q` is clamped into `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return Some(match LatencyHistogram::upper_micros(i) {
                    Some(micros) => Duration::from_micros(micros),
                    // Overflow bucket: no meaningful upper bound; report the
                    // last bounded one as a floor.
                    None => Duration::from_micros(1 << (BUCKETS - 2)),
                });
            }
        }
        unreachable!("bucket counts sum to at least count")
    }

    /// The median latency bound: `quantile(0.50)`.
    pub fn p50(&self) -> Option<Duration> {
        self.quantile(0.50)
    }

    /// The 90th-percentile latency bound: `quantile(0.90)`.
    pub fn p90(&self) -> Option<Duration> {
        self.quantile(0.90)
    }

    /// The 99th-percentile (tail) latency bound: `quantile(0.99)`.
    pub fn p99(&self) -> Option<Duration> {
        self.quantile(0.99)
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs (`None` upper
    /// bound = the overflow bucket).
    pub fn buckets(&self) -> impl Iterator<Item = (Option<Duration>, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(i, &count)| {
                (
                    LatencyHistogram::upper_micros(i).map(Duration::from_micros),
                    count,
                )
            })
    }
}

impl fmt::Display for LatencySnapshot {
    /// The metrics line: count, mean, and the p50/p90/p99 bucket bounds.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "no requests recorded");
        }
        write!(
            f,
            "{} requests; mean {:?}; p50 ≤ {:?}; p90 ≤ {:?}; p99 ≤ {:?}",
            self.count,
            self.mean().expect("count > 0"),
            self.p50().expect("count > 0"),
            self.p90().expect("count > 0"),
            self.p99().expect("count > 0"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_spaced_upper_bounds() {
        assert_eq!(LatencyHistogram::bucket_of(Duration::ZERO), 0);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(1)), 0);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(2)), 1);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(3)), 2);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(4)), 2);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(1025)), 11);
        assert_eq!(
            LatencyHistogram::bucket_of(Duration::from_secs(3_600)),
            BUCKETS - 1,
            "an hour lands in the overflow bucket"
        );
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let histogram = LatencyHistogram::new();
        for _ in 0..90 {
            histogram.record(Duration::from_micros(10)); // bucket ≤ 16 µs
        }
        for _ in 0..10 {
            histogram.record(Duration::from_micros(1_000)); // bucket ≤ 1024 µs
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count(), 100);
        assert_eq!(snapshot.quantile(0.5), Some(Duration::from_micros(16)));
        assert_eq!(snapshot.quantile(0.90), Some(Duration::from_micros(16)));
        assert_eq!(snapshot.quantile(0.99), Some(Duration::from_micros(1024)));
        assert_eq!(snapshot.p50(), snapshot.quantile(0.50));
        assert_eq!(snapshot.p90(), snapshot.quantile(0.90));
        assert_eq!(snapshot.p99(), snapshot.quantile(0.99));
        assert_eq!(snapshot.quantile(1.0), Some(Duration::from_micros(1024)));
        assert!(snapshot.mean().unwrap() >= Duration::from_micros(10));
        let line = format!("{snapshot}");
        assert!(line.contains("100 requests"), "{line}");
        assert!(line.contains("p99"), "{line}");
    }

    #[test]
    fn empty_snapshot_has_no_quantiles() {
        let snapshot = LatencyHistogram::new().snapshot();
        assert_eq!(snapshot.count(), 0);
        assert_eq!(snapshot.quantile(0.5), None);
        assert_eq!(snapshot.mean(), None);
        assert_eq!(format!("{snapshot}"), "no requests recorded");
        assert_eq!(snapshot.buckets().count(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let histogram = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..250 {
                        histogram.record(Duration::from_micros(i));
                    }
                });
            }
        });
        assert_eq!(histogram.snapshot().count(), 1_000);
    }
}
