//! `shapex` — Containment of Shape Expression Schemas for RDF.
//!
//! This is the facade crate of the workspace reproducing Staworko & Wieczorek,
//! *Containment of Shape Expression Schemas for RDF* (PODS 2019). It re-exports
//! the individual crates under stable module names and provides a [`prelude`]
//! for examples and downstream users.
//!
//! * [`rbe`] — intervals, bags, regular bag expressions and membership.
//! * [`presburger`] — existential Presburger arithmetic and the RBE translation.
//! * [`graph`] — the general graph model: simple, shape, and compressed graphs.
//! * [`shex`] — shape expression schemas, parsing, and validation.
//! * [`containment`] — embeddings and the containment decision procedures
//!   (the paper's primary contribution).
//! * [`gadgets`] — the paper's figures, lower-bound reductions, and random
//!   workload generators.
//! * [`service`] — a long-lived, multi-tenant containment service:
//!   tenant-scoped schema registration, streaming N-Triples ingestion with
//!   incremental revalidation of evolving graphs, typed errors, bounded
//!   request queues with explicit backpressure — single serve loop or a
//!   sharded `ServicePool` of workers — and a stats surface (engine cache +
//!   memory counters, latency histogram), all over one shared
//!   `ContainmentEngine` — bounded-memory when configured with a
//!   `cache_budget`, duplicate-proof under concurrency via single-flight
//!   query coalescing.
//! * [`metrics`] — the dependency-free log-spaced latency histogram behind
//!   the service stats.

#![forbid(unsafe_code)]

pub use shapex_core as containment;
pub use shapex_gadgets as gadgets;
pub use shapex_graph as graph;
pub use shapex_presburger as presburger;
pub use shapex_rbe as rbe;
pub use shapex_shex as shex;

pub mod metrics;
pub mod service;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::metrics::{LatencyHistogram, LatencySnapshot};
    pub use crate::service::{
        ContainmentService, GraphId, PoolClient, ServiceClient, ServiceError, ServicePool,
        ServiceRequest, ServiceResponse, ServiceStats, TenantId,
    };
    pub use shapex_core::{
        baseline::enumerate_counter_example,
        budget::{CacheBudget, CacheKind, Weigh},
        det::{characterizing_graph, det_containment},
        embedding::{embeds, max_simulation, Embedding},
        engine::{ContainmentEngine, ContainmentMatrix, EngineOptions, EngineStats, SchemaId},
        general::{general_containment, GeneralOptions},
        shex0::{shex0_containment, Shex0Options},
        simulation::{max_simulation_with, Simulation, SimulationOptions},
        Containment, UnknownReason,
    };
    pub use shapex_gadgets::figures;
    pub use shapex_graph::{
        DeltaReport, Graph, GraphDelta, GraphKind, Label, LabelId, LabelTable, NTriplesParser,
        NodeId, SharedLabelTable,
    };
    pub use shapex_rbe::{Bag, Interval, Rbe, Rbe0};
    pub use shapex_shex::{parse_schema, IncrementalTyping, Schema, SchemaClass, TypeId};
}
