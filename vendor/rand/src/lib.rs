//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate implements the *exact* subset of the rand 0.8 API that the
//! workspace uses: [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`seq::SliceRandom::shuffle`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++, which is more than
//! adequate for workload generation and property tests (nothing here is
//! cryptographic). Swap this path dependency for the real crate once the
//! build environment has registry access; no source changes should be needed.

#![forbid(unsafe_code)]

/// Low-level source of randomness: a stream of `u64`/`u32` words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (panics if `p ∉ [0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 random mantissa bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform range sampling, mirroring `rand::distributions::uniform`.
pub mod distributions {
    /// Range-shaped arguments accepted by [`Rng::gen_range`](crate::Rng::gen_range).
    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            /// Draws one uniform sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_sample_range_uint {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end - self.start) as u128;
                        self.start + (rng.next_u64() as u128 % span) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi - lo) as u128 + 1;
                        lo + (rng.next_u64() as u128 % span) as $t
                    }
                }
            )*};
        }

        macro_rules! impl_sample_range_int {
            ($($t:ty => $u:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                    }
                }
            )*};
        }

        impl_sample_range_uint!(u8, u16, u32, u64, usize);
        impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + unit * (self.end - self.start)
            }
        }
    }
}

/// Sequence-related sampling, mirroring `rand::seq`.
pub mod seq {
    use crate::Rng;

    /// Extension methods on slices: shuffling and random choice.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Statistically solid and fast; NOT a cryptographic generator (the real
    /// `rand::rngs::StdRng` is — nothing in this workspace relies on that).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors, so nearby seeds give unrelated streams.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
