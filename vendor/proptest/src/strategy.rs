//! The [`Strategy`] trait and its combinators: a generation-only mirror of
//! `proptest::strategy` (no shrinking — see the crate docs).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Shorthand for the value type of a strategy.
pub type ValueOf<S> = <S as Strategy>::Value;

/// A recipe for generating values of one type.
///
/// Mirrors `proptest::strategy::Strategy`, minus shrinking: `generate`
/// replaces `new_tree`, and the extra `prop_recursive` arguments that tune
/// shrinking-aware size targets are accepted and ignored.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds on it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into the composite case. The result nests at
    /// most `depth` levels, and every level keeps the leaf as an alternative
    /// so shallow values (including bare leaves) are generated too.
    /// `desired_size` and `expected_branch_size` exist for signature
    /// compatibility with the real crate and are ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

// Object-safe view of a strategy, so BoxedStrategy can hold `dyn`.
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy, mirroring
/// `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self // avoid double indirection
    }
}

/// A strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between same-typed strategies; the expansion of
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Builds a union over the given arms (panics if `arms` is empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof!: no arms");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $draw:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.$draw(self.start, self.end, false)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.$draw(*self.start(), *self.end(), true)
            }
        }
    )*};
}

impl_range_strategy!(
    u8 => draw_u8,
    u16 => draw_u16,
    u32 => draw_u32,
    u64 => draw_u64,
    usize => draw_usize,
    i8 => draw_i8,
    i16 => draw_i16,
    i32 => draw_i32,
    i64 => draw_i64,
    isize => draw_isize
);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
);
