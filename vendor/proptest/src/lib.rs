//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate implements the subset of the proptest 1.x API used by the
//! three property-test suites: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_recursive` / `boxed`, the
//! [`prop_oneof!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`] macros, [`strategy::Just`], integer-range and tuple
//! strategies, and [`collection::vec`].
//!
//! **What is intentionally missing:** shrinking and persisted failure seeds.
//! Each test function draws its cases from a deterministic RNG seeded from
//! the test's name, so failures are reproducible run to run, but a failing
//! case is reported as-is rather than minimized. Swap this path dependency
//! for the real crate once the build environment has registry access.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Strategies for collections, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::{Strategy, ValueOf};
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The size argument accepted by [`vec`]: a length or a length range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec: empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for `Vec`s with lengths drawn from `size`,
    /// mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<ValueOf<S>>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The test macro, mirroring `proptest::proptest!`.
///
/// Accepts an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items. Each function
/// becomes an ordinary `#[test]` that draws `config.cases` inputs from its
/// strategies and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        )*
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!("proptest: case {}/{} failed: {}", case + 1, config.cases, e);
                }
            }
        }
    )*};
}

/// Uniform choice between strategies, mirroring `proptest::prop_oneof!`.
/// All arms must produce the same value type; each case picks one arm
/// uniformly at random.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] body, mirroring
/// `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body, mirroring
/// `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body, mirroring
/// `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition,
/// mirroring `proptest::prop_assume!`. Skipped cases count as passes (the
/// real crate retries them; without shrinking the distinction is harmless).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
