//! Test-case execution support: configuration, errors, and the per-test RNG.
//! A generation-only mirror of `proptest::test_runner`.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many random cases each test function runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate's default; cheap strategies dominate here.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case failed, mirroring
/// `proptest::test_runner::TestCaseError` (the `Reject` variant is not
/// needed: `prop_assume!` skips directly).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic RNG behind strategy generation.
///
/// Each test function gets a stream seeded from its own name, so runs are
/// reproducible without a persistence file (the real crate records failing
/// seeds instead; without shrinking a fixed stream is the simpler contract).
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A stream that is a pure function of `name`.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a, folded into the seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// A uniform `usize` in `[lo, hi)` (`lo` when the range is empty).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + (self.inner.next_u64() % (hi - lo) as u64) as usize
    }
}

macro_rules! draw_uint {
    ($($fn_name:ident => $t:ty),*) => {$(
        impl TestRng {
            /// A uniform value in `[lo, hi)`, or `[lo, hi]` when `inclusive`.
            pub fn $fn_name(&mut self, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = if inclusive {
                    assert!(lo <= hi, "strategy: empty range");
                    (hi as u128) - (lo as u128) + 1
                } else {
                    assert!(lo < hi, "strategy: empty range");
                    (hi as u128) - (lo as u128)
                };
                lo.wrapping_add((self.inner.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

macro_rules! draw_int {
    ($($fn_name:ident => $t:ty),*) => {$(
        impl TestRng {
            /// A uniform value in `[lo, hi)`, or `[lo, hi]` when `inclusive`.
            pub fn $fn_name(&mut self, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = if inclusive {
                    assert!(lo <= hi, "strategy: empty range");
                    ((hi as i128) - (lo as i128) + 1) as u128
                } else {
                    assert!(lo < hi, "strategy: empty range");
                    ((hi as i128) - (lo as i128)) as u128
                };
                ((lo as i128) + (self.inner.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

draw_uint!(
    draw_u8 => u8,
    draw_u16 => u16,
    draw_u32 => u32,
    draw_u64 => u64,
    draw_usize => usize
);

draw_int!(
    draw_i8 => i8,
    draw_i16 => i16,
    draw_i32 => i32,
    draw_i64 => i64,
    draw_isize => isize
);
