//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate implements the subset of the criterion 0.5 API used by the
//! bench targets: [`Criterion`] with `sample_size` / `warm_up_time` /
//! `measurement_time` / `bench_function` / `benchmark_group`,
//! [`BenchmarkGroup`] with `bench_function` / `bench_with_input` / `finish`,
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is honest but simple: each benchmark warms up for the
//! configured warm-up time, then runs timed batches until the measurement
//! time elapses, and reports the per-iteration mean, min, and max. There are
//! no statistical outlier analyses, plots, or saved baselines. Swap this
//! path dependency for the real crate once the build environment has
//! registry access; no source changes should be needed.

#![forbid(unsafe_code)]

use std::fmt::{self, Write as _};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // The real crate defaults to 100 samples / 3s warm-up / 5s
            // measurement; every target in this workspace overrides these.
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets how long each benchmark warms up before measurement.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the time budget for the measurement phase.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, None, id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            warm_up_time: None,
            measurement_time: None,
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    warm_up_time: Option<Duration>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Overrides the warm-up time for this group.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = Some(t);
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.effective();
        run_one(&cfg, Some(&self.name), &id.into_benchmark_id().0, f);
        self
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let cfg = self.effective();
        run_one(&cfg, Some(&self.name), &id.into_benchmark_id().0, |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group (a no-op beyond matching the real API).
    pub fn finish(self) {}

    fn effective(&self) -> Criterion {
        Criterion {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            warm_up_time: self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
            measurement_time: self
                .measurement_time
                .unwrap_or(self.criterion.measurement_time),
        }
    }
}

/// A benchmark identifier combining a function name and a parameter,
/// mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        let mut s = function.into();
        let _ = write!(s, "/{parameter}");
        BenchmarkId(s)
    }

    /// An id rendered from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`], accepted wherever the real crate takes
/// `impl Into<BenchmarkId>` (plain strings included).
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// The timing loop handle passed to benchmark closures, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it for the batch size chosen by the harness.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Whether this process should actually measure. `cargo bench` passes
/// `--bench` to harness-less targets; any other invocation (notably
/// `cargo test --benches`) runs each routine once as a smoke test, matching
/// the real crate's behaviour.
fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn run_one<F>(cfg: &Criterion, group: Option<&str>, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let full_id = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };

    if !bench_mode() {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("Testing {full_id}: ok");
        return;
    }

    // Warm-up: run single iterations until the warm-up budget is spent, and
    // use the observed cost to size the measurement batches.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < cfg.warm_up_time {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));

    // Size batches so `sample_size` samples roughly fill the measurement
    // budget, at >= 1 iteration per sample.
    let budget = cfg.measurement_time.as_nanos();
    let per_sample = budget / cfg.sample_size.max(1) as u128;
    let batch = (per_sample / per_iter.max(1)).clamp(1, u128::from(u64::MAX)) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    let measure_start = Instant::now();
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            iterations: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / batch as f64);
        if measure_start.elapsed() > cfg.measurement_time * 2 {
            break; // never exceed twice the budget
        }
    }

    let n = samples.len().max(1) as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0_f64, f64::max);
    println!(
        "{full_id:<60} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion::criterion_main!`.
///
/// Measurement only happens under `cargo bench` (which passes `--bench` to
/// harness-less targets); other invocations — `cargo test --benches` in
/// particular — run every routine once as a fast smoke test, matching the
/// real crate's behaviour.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
