//! Cross-crate integration tests: parse schemas and graphs, validate, embed,
//! and decide containment end to end through the `shapex` facade.

use shapex::containment::det::{characterizing_graph, det_containment};
use shapex::containment::embedding::{embeds, max_simulation};
use shapex::containment::shex0::{shex0_containment, Shex0Options};
use shapex::containment::Containment;
use shapex::gadgets::figures;
use shapex::gadgets::generate::{restrict_schema, SchemaGen};
use shapex::gadgets::reductions::{
    dnf_is_tautology, dnf_tautology_gadget, exponential_family, exponential_family_witness,
    DnfFormula,
};
use shapex::graph::{parse_graph, write_graph};
use shapex::shex::typing::{maximal_typing, validates};
use shapex::shex::{parse_schema, write_schema, SchemaClass};

use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn figure_1_pipeline() {
    let schema = figures::bug_tracker_schema();
    let graph = figures::bug_tracker_graph();
    assert_eq!(schema.classify(), SchemaClass::DetShEx0Minus);

    // Validation and embedding agree (Proposition 3.2: for ShEx0 the two
    // semantics coincide).
    let typing = maximal_typing(&graph, &schema);
    assert!(typing.is_total());
    let shape = schema.to_shape_graph().unwrap();
    assert!(embeds(&graph, &shape).is_some());

    // Schema round-trips through its textual form without changing class.
    let reparsed = parse_schema(&write_schema(&schema)).unwrap();
    assert_eq!(reparsed.classify(), SchemaClass::DetShEx0Minus);
    assert!(det_containment(&schema, &reparsed).unwrap().is_contained());
    assert!(det_containment(&reparsed, &schema).unwrap().is_contained());

    // The instance graph round-trips through the text format.
    let graph2 = parse_graph(&write_graph(&graph)).unwrap();
    assert!(validates(&graph2, &schema));
}

#[test]
fn validation_agrees_with_embedding_for_shex0() {
    // Proposition 3.2: for RBE0 schemas, G ⊨ S iff G ≼ shape_graph(S).
    // Check on a batch of sampled and hand-written graphs.
    let schema = figures::bug_tracker_schema();
    let shape = schema.to_shape_graph().unwrap();
    let samples = [
        "b -descr-> l\nb -reportedBy-> u\nu -name-> l2\n",
        "b -descr-> l\nb -reportedBy-> u\nu -name-> l2\nu -email-> l3\nb -related-> b\n",
        "b -descr-> l\n",
        "b -descr-> l\nb -descr-> l2\nb -reportedBy-> u\nu -name-> l3\n",
        "e -name-> l\ne -email-> l2\nx -reproducedBy-> e\n",
        "lonely\n",
    ];
    for text in samples {
        let g = parse_graph(text).unwrap();
        assert_eq!(
            validates(&g, &schema),
            embeds(&g, &shape).is_some(),
            "validation and embedding disagree on:\n{text}"
        );
    }
}

#[test]
fn det_containment_matches_shex0_containment_on_det_minus_pairs() {
    // On DetShEx0- inputs the polynomial procedure and the general one must
    // give the same verdict.
    let mut rng = StdRng::seed_from_u64(42);
    for seed in 0..8u64 {
        let mut schema_rng = StdRng::seed_from_u64(seed);
        let k = SchemaGen::new(5, 3).det_shex0_minus(&mut schema_rng);
        let h = restrict_schema(&mut rng, &k);
        if !h.is_det_shex0_minus() {
            continue;
        }
        let det = det_containment(&h, &k).unwrap();
        let general = shex0_containment(&h, &k, &Shex0Options::quick());
        assert_eq!(
            det.is_contained(),
            general.is_contained(),
            "procedures disagree (seed {seed})\nH:\n{h}\nK:\n{k}"
        );
        assert!(
            det.is_contained(),
            "restrictions are contained by construction"
        );
    }
}

#[test]
fn non_containment_answers_are_always_certified() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut checked = 0;
    for seed in 0..10u64 {
        let mut schema_rng = StdRng::seed_from_u64(1000 + seed);
        let a = SchemaGen::new(4, 3).det_shex0_minus(&mut schema_rng);
        let b = SchemaGen::new(4, 3).det_shex0_minus(&mut rng);
        for (h, k) in [(&a, &b), (&b, &a)] {
            if let Containment::NotContained(witness) =
                shex0_containment(h, k, &Shex0Options::quick())
            {
                assert!(
                    validates(&witness, h),
                    "witness must satisfy H (seed {seed})"
                );
                assert!(
                    !validates(&witness, k),
                    "witness must violate K (seed {seed})"
                );
                checked += 1;
            }
        }
    }
    assert!(
        checked > 0,
        "expected at least one non-containment among random pairs"
    );
}

#[test]
fn characterizing_graph_property_on_random_det_minus_pairs() {
    // Lemma 4.2: G_H ∈ L(H), and for any K in the class, G_H ≼ K implies
    // H ≼ K. We check the contrapositive-free form directly on random pairs.
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let h = SchemaGen::new(4, 3).det_shex0_minus(&mut rng);
        let k = SchemaGen::new(4, 3).det_shex0_minus(&mut rng);
        let g = characterizing_graph(&h).unwrap();
        let hg = h.to_shape_graph().unwrap();
        let kg = k.to_shape_graph().unwrap();
        assert!(embeds(&g, &hg).is_some(), "G ∈ L(H) (seed {seed})");
        assert!(validates(&g, &h), "G ⊨ H (seed {seed})");
        if embeds(&g, &kg).is_some() {
            assert!(
                embeds(&hg, &kg).is_some(),
                "G ≼ K must imply H ≼ K (seed {seed})\nH:\n{h}\nK:\n{k}"
            );
        }
    }
}

#[test]
fn dnf_gadget_end_to_end() {
    // Figure 6's formula is not a tautology, so containment fails and the
    // schemas separate on a concrete valuation; a tautology yields
    // containment (the procedure must not claim otherwise).
    let fig6 = DnfFormula {
        num_vars: 3,
        terms: vec![vec![1, -2], vec![2, -3]],
    };
    assert!(!dnf_is_tautology(&fig6));
    let (h, k) = dnf_tautology_gadget(&fig6);
    let result = shex0_containment(&h, &k, &Shex0Options::default());
    let witness = result
        .counter_example()
        .expect("not a tautology => not contained");
    assert!(validates(witness, &h) && !validates(witness, &k));

    let taut = DnfFormula {
        num_vars: 2,
        terms: vec![vec![1], vec![-1, 2], vec![-1, -2]],
    };
    assert!(dnf_is_tautology(&taut));
    let (ht, kt) = dnf_tautology_gadget(&taut);
    let result = shex0_containment(&ht, &kt, &Shex0Options::quick());
    assert!(!result.is_not_contained());
}

#[test]
fn exponential_family_counter_examples_grow() {
    let mut sizes = Vec::new();
    for n in 1..=3 {
        let (h, k) = exponential_family(n);
        let witness = exponential_family_witness(n);
        assert!(validates(&witness, &h));
        assert!(!validates(&witness, &k));
        sizes.push(witness.node_count());
    }
    assert!(sizes[1] > sizes[0] && sizes[2] > sizes[1]);
    assert!(
        sizes[2] - sizes[1] > sizes[1] - sizes[0],
        "super-linear growth"
    );
}

#[test]
fn simulation_is_monotone_under_edge_removal() {
    // Removing an edge from H can only shrink the simulation of G in H when
    // the edge was mandatory; it never turns a non-simulated node into a
    // simulated one... but removing an edge from G can only help. Check the
    // latter on the Figure 1 instance.
    let schema = figures::bug_tracker_schema();
    let shape = schema.to_shape_graph().unwrap();
    let full = figures::bug_tracker_graph();
    let full_sim = max_simulation(&full, &shape);

    // Drop the optional `reproducedBy` edge: every previously simulated node
    // stays simulated.
    let reduced =
        parse_graph("bug1 -descr-> lit_boom\nbug1 -reportedBy-> user1\nuser1 -name-> lit_john\n")
            .unwrap();
    let reduced_sim = max_simulation(&reduced, &shape);
    for node in reduced.nodes() {
        let name = reduced.node_name(node);
        if let Some(original) = full.find_node(name) {
            for image in full_sim.simulators_of(original) {
                assert!(
                    reduced_sim.simulators_of(node).contains(image),
                    "node {name} lost simulator {image:?} after removing edges"
                );
            }
        }
    }
}
