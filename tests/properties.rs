//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

use shapex::containment::embedding::embeds;
use shapex::presburger::translate::rbe_member;
use shapex::rbe::flow::{basic_assignment, general_assignment, verify_assignment};
use shapex::rbe::membership::{naive_member, rbe0_member, sorbe_member};
use shapex::rbe::{Bag, Interval, Rbe};
use shapex::shex::typing::validates;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

const SYMBOLS: [&str; 3] = ["a", "b", "c"];

fn arb_interval() -> impl Strategy<Value = Interval> {
    prop_oneof![
        Just(Interval::ONE),
        Just(Interval::OPT),
        Just(Interval::PLUS),
        Just(Interval::STAR),
        (0u64..3, 0u64..3).prop_map(|(a, b)| Interval::bounded(a.min(a + b), a + b)),
    ]
}

fn arb_basic() -> impl Strategy<Value = Interval> {
    prop_oneof![
        Just(Interval::ONE),
        Just(Interval::OPT),
        Just(Interval::PLUS),
        Just(Interval::STAR),
    ]
}

fn arb_bag() -> impl Strategy<Value = Bag<&'static str>> {
    proptest::collection::vec((0usize..SYMBOLS.len(), 0u64..4), 0..4)
        .prop_map(|pairs| Bag::from_counts(pairs.into_iter().map(|(i, c)| (SYMBOLS[i], c))))
}

fn arb_rbe(depth: u32) -> impl Strategy<Value = Rbe<&'static str>> {
    let leaf = prop_oneof![
        Just(Rbe::Epsilon),
        (0usize..SYMBOLS.len()).prop_map(|i| Rbe::symbol(SYMBOLS[i])),
    ];
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Rbe::disj),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Rbe::concat),
            (inner, arb_interval_small()).prop_map(|(e, i)| Rbe::repeat(e, i)),
        ]
    })
}

fn arb_interval_small() -> impl Strategy<Value = Interval> {
    prop_oneof![
        Just(Interval::ONE),
        Just(Interval::OPT),
        Just(Interval::STAR),
        Just(Interval::bounded(1, 2)),
        Just(Interval::exactly(2)),
    ]
}

// ---------------------------------------------------------------------------
// Interval algebra
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn interval_addition_is_commutative_and_monotone(a in arb_interval(), b in arb_interval(), n in 0u64..8) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        // The sum contains x + y whenever x ∈ a and y ∈ b (spot check).
        if a.contains(n) && b.contains(n) {
            prop_assert!(a.add(&b).contains(n + n));
        }
        // Zero is neutral.
        prop_assert_eq!(a.add(&Interval::ZERO), a);
    }

    #[test]
    fn interval_subset_is_a_partial_order(a in arb_interval(), b in arb_interval(), n in 0u64..6) {
        prop_assert!(a.is_subset(&a));
        if a.is_subset(&b) && b.is_subset(&a) {
            prop_assert_eq!(a, b);
        }
        // Subset inclusion respects membership.
        if a.is_subset(&b) && a.contains(n) {
            prop_assert!(b.contains(n));
        }
    }

    #[test]
    fn interval_intersection_is_exact(a in arb_interval(), b in arb_interval(), n in 0u64..8) {
        match a.intersect(&b) {
            Some(c) => prop_assert_eq!(c.contains(n), a.contains(n) && b.contains(n)),
            None => prop_assert!(!(a.contains(n) && b.contains(n))),
        }
    }

    #[test]
    fn interval_parse_roundtrip(a in arb_interval()) {
        let text = a.to_string();
        prop_assert_eq!(Interval::parse(&text).unwrap(), a);
    }
}

// ---------------------------------------------------------------------------
// Bags
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn bag_union_is_commutative_and_counts_add(a in arb_bag(), b in arb_bag()) {
        let ab = a.union(&b);
        let ba = b.union(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.total(), a.total() + b.total());
        for s in SYMBOLS {
            prop_assert_eq!(ab.count(&s), a.count(&s) + b.count(&s));
        }
        prop_assert!(a.is_subbag(&ab));
    }
}

// ---------------------------------------------------------------------------
// RBE membership: the three procedures agree
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn presburger_membership_agrees_with_naive(expr in arb_rbe(2), bag in arb_bag()) {
        // Keep the oracle tractable.
        prop_assume!(bag.total() <= 5);
        prop_assert_eq!(rbe_member(&bag, &expr), naive_member(&bag, &expr));
    }

    #[test]
    fn sorbe_membership_agrees_with_naive(expr in arb_rbe(2), bag in arb_bag()) {
        prop_assume!(bag.total() <= 5);
        if let Ok(answer) = sorbe_member(&bag, &expr) {
            prop_assert_eq!(answer, naive_member(&bag, &expr));
        }
    }

    #[test]
    fn rbe0_membership_agrees_with_naive(
        atoms in proptest::collection::vec((0usize..SYMBOLS.len(), arb_basic()), 0..4),
        bag in arb_bag(),
    ) {
        prop_assume!(bag.total() <= 5);
        let expr = Rbe::concat(
            atoms
                .iter()
                .map(|(i, interval)| Rbe::repeat(Rbe::symbol(SYMBOLS[*i]), *interval))
                .collect(),
        );
        let rbe0 = expr.to_rbe0().expect("constructed as RBE0");
        prop_assert_eq!(rbe0_member(&bag, &rbe0), naive_member(&bag, &expr));
    }
}

// ---------------------------------------------------------------------------
// Interval flow: the polynomial and the backtracking solver agree
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn flow_solvers_agree(
        sources in proptest::collection::vec(arb_basic(), 0..4),
        sinks in proptest::collection::vec(arb_basic(), 0..4),
        edges in proptest::collection::vec((0usize..4, 0usize..4), 0..12),
    ) {
        let compatible = |v: usize, u: usize| edges.contains(&(v, u));
        let basic = basic_assignment(&sources, &sinks, compatible);
        let general = general_assignment(&sources, &sinks, compatible);
        prop_assert_eq!(basic.is_some(), general.is_some());
        if let Some(a) = &basic {
            prop_assert!(verify_assignment(&sources, &sinks, a));
        }
        if let Some(a) = &general {
            prop_assert!(verify_assignment(&sources, &sinks, a));
        }
    }
}

// ---------------------------------------------------------------------------
// Validation vs. embedding (Proposition 3.2) on random instances
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn validation_coincides_with_embedding_for_shex0(seed in 0u64..5000) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use shapex::gadgets::generate::SchemaGen;
        use shapex::graph::generate::{sample_from_shape, GraphGen};

        let mut rng = StdRng::seed_from_u64(seed);
        let schema = SchemaGen::new(4, 3).shex0(&mut rng, false);
        let shape = schema.to_shape_graph().expect("RBE0 schema");
        // A graph sampled from the shape graph and a random simple graph.
        let sampled = sample_from_shape(&mut rng, &shape, 24);
        let random = GraphGen::new(4, 3).out_degree(1.5).simple(&mut rng);
        for g in [sampled, random] {
            prop_assert_eq!(
                validates(&g, &schema),
                embeds(&g, &shape).is_some(),
                "disagreement for seed {}\nschema:\n{}\ngraph:\n{}",
                seed,
                schema,
                g
            );
        }
    }
}
