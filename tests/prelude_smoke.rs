//! Smoke test for the facade: everything here goes through
//! `shapex::prelude` alone, so the re-export surface itself is under test.
//! If a prelude item is renamed or dropped, this file stops compiling.

use shapex::prelude::*;

/// Parse a schema, convert it to its shape graph, build an instance graph by
/// hand, and run both containment procedures — the full zero-to-answer path
/// a downstream user takes.
#[test]
fn prelude_end_to_end() {
    // 1. Parse two ShEx₀ schemas (H is a restriction of K).
    let h: Schema = parse_schema(
        "Bug -> descr::Literal, reportedBy::User\n\
         User -> name::Literal, email::Literal\n\
         Literal -> EMPTY\n",
    )
    .expect("H parses");
    let k: Schema = parse_schema(
        "Bug -> descr::Literal, reportedBy::User, related::Bug*\n\
         User -> name::Literal, email::Literal?\n\
         Literal -> EMPTY\n",
    )
    .expect("K parses");
    assert_eq!(h.classify(), SchemaClass::DetShEx0Minus);

    // 2. Build a small instance graph with the graph API.
    let mut g: Graph = Graph::new();
    let bug = g.node("bug1");
    let user = g.node("alice");
    let descr = g.node("d");
    let name = g.node("n");
    let email = g.node("e");
    g.add_edge(bug, "descr", descr);
    g.add_edge(bug, "reportedBy", user);
    g.add_edge(user, "name", name);
    g.add_edge(user, "email", email);
    assert_eq!(g.kind(), GraphKind::Simple);

    // 3. The sufficient embedding check: the instance embeds into H's shape
    //    graph (every node finds a type whose neighbourhood admits it).
    let h_shape = h.to_shape_graph().expect("RBE0 schema has a shape graph");
    assert!(embeds(&g, &h_shape).is_some(), "instance embeds into H");
    assert!(
        !max_simulation(&g, &h_shape).is_empty(),
        "simulation is non-trivial"
    );

    // 4. ShEx₀ containment: H ⊆ K holds (K only loosens H), K ⊆ H fails
    //    (K admits a User without email).
    let fwd = shex0_containment(&h, &k, &Shex0Options::quick());
    assert!(fwd.is_contained(), "H ⊆ K, got {fwd:?}");
    let rev = shex0_containment(&k, &h, &Shex0Options::quick());
    assert!(rev.is_not_contained(), "K ⊄ H, got {rev:?}");
    if let Containment::NotContained(witness) = &rev {
        assert!(witness.node_count() > 0, "counter-example is non-empty");
    }

    // 5. General containment on full ShEx (disjunction makes it non-RBE0).
    let narrow = parse_schema("Root -> p::A\nA -> a::L?\nL -> EMPTY\n").expect("narrow parses");
    let wide = parse_schema("Root -> p::A | p::B\nA -> a::L?\nB -> b::L\nL -> EMPTY\n")
        .expect("wide parses");
    assert!(general_containment(&narrow, &wide, &GeneralOptions::quick()).is_contained());
    assert!(general_containment(&wide, &narrow, &GeneralOptions::quick()).is_not_contained());
}

/// The remaining prelude items (gadget figures, labels, RBE building blocks,
/// baseline search, det containment) are usable as re-exported.
#[test]
fn prelude_surface_is_complete() {
    // Figures from the paper, via the gadgets re-export.
    let s0 = figures::s0_schema();
    let g0 = figures::g0_graph();
    assert!(g0.node_count() > 0 && s0.size() > 0);

    // RBE building blocks.
    let expr: Rbe<&str> = Rbe::repeat(Rbe::symbol("a"), Interval::PLUS);
    let rbe0: Rbe0<&str> = expr.to_rbe0().expect("a+ is RBE0");
    let bag: Bag<&str> = Bag::from_counts([("a", 2)]);
    assert_eq!(rbe0.atoms().len(), 1);
    assert!(bag.total() == 2);

    // Det containment + baseline counter-example search agree on a
    // self-containment instance.
    let det = figures::bug_tracker_schema();
    if det.is_det_shex0_minus() {
        assert!(det_containment(&det, &det)
            .expect("in class")
            .is_contained());
    }
    assert!(enumerate_counter_example(&det, &det, 2, 3, 500).is_none());

    // Label interning is stable.
    let mut table = LabelTable::new();
    let l: Label = table.intern("p");
    assert_eq!(table.intern("p"), l);
    assert_eq!(table.len(), 1);

    // Characterizing graph construction (Lemma 4.2).
    let cg = characterizing_graph(&det).expect("DetShEx0- schema");
    assert!(cg.node_count() > 0);
    let _: Option<NodeId> = cg.nodes().next();
}
