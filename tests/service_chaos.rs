//! Pool-worker-kill hammer, compiled only under `--features failpoints`.
//!
//! A seeded fault schedule panics workers at the `worker-dispatch` seam
//! while four client threads hammer a shared [`ServicePool`] with checks
//! and stats probes. The suite pins the supervision contract end to end:
//!
//! - **No caller ever hangs.** Every request completes within its
//!   [`PoolClient::call_timeout`] bound with a typed outcome — an answer,
//!   [`ServiceError::Internal`] (its worker was killed mid-dispatch), or a
//!   deadline/overload refusal. Nothing else, and never a stuck thread.
//! - **No verdict is ever wrong.** Every containment answer that does come
//!   back matches the fault-free verdict.
//! - **Every kill is counted.** [`ServiceStats::worker_restarts`] converges
//!   to exactly the number of `Internal` errors the callers observed: one
//!   respawn per injected panic, none invented, none lost.

#![cfg(feature = "failpoints")]

use std::time::{Duration, Instant};

use shapex::service::{
    ContainmentService, ServiceError, ServiceRequest, ServiceResponse, TenantId,
};
use shapex_core::faults::{self, site, FaultAction, FaultPlan};
use shapex_shex::parse_schema;

/// Dispatch hit-indices that panic: front-loaded then spread out, so kills
/// land both while every client is cold and while the pool is warm.
const KILL_HITS: &[u64] = &[0, 3, 7, 12, 18, 25];

const CLIENTS: usize = 4;
const CALLS_PER_CLIENT: usize = 20;

#[test]
fn worker_kills_yield_typed_errors_correct_verdicts_and_counted_restarts() {
    let service = ContainmentService::new();
    let pool = service.pool(4, 8);

    // Register the pair and take the fault-free verdict before arming.
    faults::clear();
    let register = |text: &str| {
        let client = pool.client(TenantId::DEFAULT);
        match client.call_blocking(ServiceRequest::Register(Box::new(
            parse_schema(text).unwrap(),
        ))) {
            Ok(ServiceResponse::Registered(id)) => id,
            other => panic!("register failed: {other:?}"),
        }
    };
    let h = register("T -> p::L?\nL -> EMPTY\n");
    let k = register("T -> p::L*\nL -> EMPTY\n");
    let oracle = match pool
        .client(TenantId::DEFAULT)
        .call_blocking(ServiceRequest::Check { h, k })
    {
        Ok(ServiceResponse::Answer(answer)) => answer,
        other => panic!("oracle check failed: {other:?}"),
    };
    assert!(oracle.is_contained(), "p::L? ⊑ p::L* must hold");

    let mut plan = FaultPlan::new();
    for &hit in KILL_HITS {
        plan = plan.inject(site::WORKER_DISPATCH, hit, FaultAction::Panic);
    }
    faults::install(plan);

    // The hammer: every call bounded, every outcome classified.
    let internals: u64 = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let client = pool.client(TenantId::DEFAULT);
                let oracle = &oracle;
                scope.spawn(move || {
                    let mut internals = 0u64;
                    for call in 0..CALLS_PER_CLIENT {
                        let request = if call % 2 == 0 {
                            ServiceRequest::Check { h, k }
                        } else {
                            ServiceRequest::Stats
                        };
                        match client.call_timeout(request, Duration::from_secs(60)) {
                            Ok(ServiceResponse::Answer(answer)) => {
                                assert_eq!(
                                    answer.is_contained(),
                                    oracle.is_contained(),
                                    "verdict diverged under worker kills: {answer:?}"
                                );
                            }
                            Ok(ServiceResponse::Stats(_)) => {}
                            Err(ServiceError::Internal) => internals += 1,
                            // Bounded queues under churn may refuse; both are
                            // typed, prompt outcomes — never a hang.
                            Err(ServiceError::Overloaded | ServiceError::DeadlineExceeded) => {}
                            other => panic!("untyped outcome under faults: {other:?}"),
                        }
                    }
                    internals
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    faults::clear();

    assert_eq!(
        internals,
        KILL_HITS.len() as u64,
        "each scheduled kill surfaces as exactly one Internal error"
    );

    // The supervisor counts a restart when it reaps the dead incarnation,
    // which can trail the caller's Internal reply by a beat — poll briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut restarts = service.stats().worker_restarts;
    while restarts != internals && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
        restarts = service.stats().worker_restarts;
    }
    assert_eq!(
        restarts, internals,
        "worker_restarts must converge to the observed Internal count"
    );

    // Respawned workers drain the pool cleanly: join must not hang.
    pool.join();
}
