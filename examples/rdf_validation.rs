//! Validate an edge-list "RDF" document against a ShEx schema provided as
//! text, reporting the maximal typing and the offending nodes.
//!
//! Run with `cargo run --example rdf_validation`. Pass two file paths to
//! validate your own data: `cargo run --example rdf_validation -- graph.txt
//! schema.shex`.

use std::env;
use std::fs;
use std::process::ExitCode;

use shapex::graph::parse_graph;
use shapex::shex::parse_schema;
use shapex::shex::typing::maximal_typing;

const DEFAULT_GRAPH: &str = "\
# A small social feed
post1 -author-> alice
post1 -body-> lit1
post1 -tag-> tag_rust
post1 -tag-> tag_rdf
post2 -author-> bob
post2 -body-> lit2
post2 -inReplyTo-> post1
alice -name-> lit3
bob -name-> lit4
bob -homepage-> lit5
tag_rust -label-> lit6
tag_rdf -label-> lit7
# post3 is missing its author on purpose
post3 -body-> lit8
";

const DEFAULT_SCHEMA: &str = "\
Post -> author::Person, body::Literal, tag::Tag*, inReplyTo::Post?
Person -> name::Literal, homepage::Literal?
Tag -> label::Literal
Literal -> EMPTY
";

fn main() -> ExitCode {
    let args: Vec<String> = env::args().collect();
    let (graph_text, schema_text) = if args.len() >= 3 {
        let graph = fs::read_to_string(&args[1]).expect("cannot read the graph file");
        let schema = fs::read_to_string(&args[2]).expect("cannot read the schema file");
        (graph, schema)
    } else {
        (DEFAULT_GRAPH.to_owned(), DEFAULT_SCHEMA.to_owned())
    };

    let graph = match parse_graph(&graph_text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("graph parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let schema = match parse_schema(&schema_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("schema parse error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("schema class: {}", schema.classify());
    let typing = maximal_typing(&graph, &schema);
    println!("\nnode types:");
    for node in graph.nodes() {
        let types: Vec<&str> = typing
            .types_of(node)
            .iter()
            .map(|t| schema.type_name(*t))
            .collect();
        let rendered = if types.is_empty() {
            "<none>".to_owned()
        } else {
            types.join(", ")
        };
        println!("  {:12} : {}", graph.node_name(node), rendered);
    }

    let untyped = typing.untyped_nodes();
    if untyped.is_empty() {
        println!("\nthe graph satisfies the schema");
        ExitCode::SUCCESS
    } else {
        println!("\nthe graph violates the schema; untypable nodes:");
        for node in untyped {
            println!("  {}", graph.node_name(node));
        }
        ExitCode::FAILURE
    }
}
