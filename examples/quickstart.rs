//! Quickstart: the Figure 1 bug tracker end to end.
//!
//! * parse the ShEx schema and an RDF-like graph,
//! * validate the graph (maximal typing),
//! * view the schema as a shape graph and compute an embedding,
//! * check containment against the refactored schema from the paper's
//!   introduction.
//!
//! Run with `cargo run --example quickstart`.

use shapex::containment::embedding::embeds;
use shapex::containment::shex0::{shex0_containment, Shex0Options};
use shapex::gadgets::figures;
use shapex::shex::typing::maximal_typing;

fn main() {
    // 1. The Figure 1 schema and instance.
    let schema = figures::bug_tracker_schema();
    let graph = figures::bug_tracker_graph();
    println!("=== Schema (Figure 1) ===\n{schema}");
    println!("=== Instance ===\n{graph}");

    // 2. Validation: compute the maximal typing and print it.
    let typing = maximal_typing(&graph, &schema);
    println!("=== Maximal typing ===");
    for node in graph.nodes() {
        let types: Vec<&str> = typing
            .types_of(node)
            .iter()
            .map(|t| schema.type_name(*t))
            .collect();
        println!("  {:10} : {}", graph.node_name(node), types.join(", "));
    }
    println!(
        "graph {} the schema\n",
        if typing.is_total() {
            "satisfies"
        } else {
            "violates"
        }
    );

    // 3. Embeddings: the instance embeds into the schema's shape graph.
    let shape = schema.to_shape_graph().expect("Figure 1 is an RBE0 schema");
    match embeds(&graph, &shape) {
        Some(embedding) => {
            let emp1 = graph.find_node("emp1").expect("emp1 exists");
            let images: Vec<&str> = embedding
                .images_of(emp1)
                .iter()
                .map(|m| shape.node_name(*m))
                .collect();
            println!(
                "emp1 is simulated by the shape graph nodes: {}",
                images.join(", ")
            );
        }
        None => println!("no embedding (unexpected for a valid instance)"),
    }

    // 4. Containment against the refactored schema of the introduction.
    let split = figures::bug_tracker_split_schema();
    let options = Shex0Options::default();
    println!("\n=== Containment checks ===");
    println!(
        "split ⊆ original : {}",
        shex0_containment(&split, &schema, &options)
    );
    println!(
        "original ⊆ split : {} (no embedding exists; the equivalence needs the union\n\
         of User1 and User2, which the budgeted procedure reports as unknown rather\n\
         than guessing)",
        shex0_containment(&schema, &split, &options)
    );
}
