//! Complexity explorer: exercise the paper's lower-bound gadgets.
//!
//! * Theorem 3.5 — SAT instances turned into embedding problems with
//!   arbitrary intervals; the embedding answer must match a SAT oracle.
//! * Theorem 4.5 / Figure 6 — DNF formulas turned into `DetShEx₀` containment
//!   problems; containment holds iff the formula is a tautology.
//! * Lemma 5.1 — the family whose minimal counter-examples grow exponentially.
//!
//! Run with `cargo run --release --example complexity_explorer`.

use std::time::Instant;

use shapex::containment::embedding::embeds;
use shapex::containment::shex0::{shex0_containment, Shex0Options};
use shapex::gadgets::generate::{random_cnf, random_dnf};
use shapex::gadgets::reductions::{
    cnf_satisfiable, dnf_is_tautology, dnf_tautology_gadget, exponential_family,
    exponential_family_witness, sat_embedding_gadget,
};
use shapex::shex::typing::validates;

use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2019);

    println!("=== Theorem 3.5: SAT as embedding with arbitrary intervals ===");
    println!(
        "{:<8} {:>8} {:>8} {:>12} {:>10}",
        "vars", "clauses", "sat?", "embeds?", "time"
    );
    for vars in 2..=4 {
        let formula = random_cnf(&mut rng, vars, vars + 1, 2);
        let sat = cnf_satisfiable(&formula);
        let (h, k) = sat_embedding_gadget(&formula);
        let start = Instant::now();
        let embedded = embeds(&h, &k).is_some();
        let elapsed = start.elapsed();
        println!(
            "{:<8} {:>8} {:>8} {:>12} {:>10.2?}",
            vars,
            vars + 1,
            sat,
            embedded,
            elapsed
        );
        assert_eq!(sat, embedded, "the reduction must agree with the oracle");
    }

    println!("\n=== Theorem 4.5 / Figure 6: DNF tautology as DetShEx0 containment ===");
    println!(
        "{:<8} {:>8} {:>12} {:>14} {:>10}",
        "vars", "terms", "tautology?", "contained?", "time"
    );
    // The Figure 6 formula plus random instances.
    let fig6 = shapex::gadgets::reductions::DnfFormula {
        num_vars: 3,
        terms: vec![vec![1, -2], vec![2, -3]],
    };
    let mut instances = vec![fig6];
    for vars in 2..=4 {
        instances.push(random_dnf(&mut rng, vars, vars, 2));
    }
    for formula in instances {
        let tautology = dnf_is_tautology(&formula);
        let (h, k) = dnf_tautology_gadget(&formula);
        let start = Instant::now();
        let result = shex0_containment(&h, &k, &Shex0Options::quick());
        let elapsed = start.elapsed();
        let answer = if result.is_contained() {
            "contained"
        } else if result.is_not_contained() {
            "not contained"
        } else {
            "unknown"
        };
        println!(
            "{:<8} {:>8} {:>12} {:>14} {:>10.2?}",
            formula.num_vars,
            formula.terms.len(),
            tautology,
            answer,
            elapsed
        );
        if tautology {
            assert!(!result.is_not_contained());
        } else {
            assert!(!result.is_contained());
        }
    }

    println!("\n=== Lemma 5.1: exponentially large minimal counter-examples ===");
    println!(
        "{:<4} {:>14} {:>14} {:>16}",
        "n", "|H| + |K|", "witness nodes", "witness valid?"
    );
    for n in 1..=4 {
        let (h, k) = exponential_family(n);
        let witness = exponential_family_witness(n);
        let ok = validates(&witness, &h) && !validates(&witness, &k);
        println!(
            "{:<4} {:>14} {:>14} {:>16}",
            n,
            h.size() + k.size(),
            witness.node_count(),
            ok
        );
    }
    println!("\n(the witness size doubles with n while the schema size grows polynomially)");
}
