//! Schema evolution: deciding whether a schema change is backward compatible.
//!
//! A new version of a schema is *backward compatible* when every instance of
//! the old schema is still valid, i.e. `L(old) ⊆ L(new)`. A migration tool
//! rarely asks one such question: it compares every candidate revision
//! against every other (and against the deployed version), which is the
//! batch workload [`ContainmentEngine::check_matrix`] serves — one engine
//! session computes the full N×N containment matrix, building each schema's
//! shape graph, unfolding pools, and validation verdicts once instead of
//! once per pair.
//!
//! Run with `cargo run --example schema_evolution`.

use shapex::containment::engine::ContainmentEngine;
use shapex::containment::Containment;
use shapex::graph::write_graph;
use shapex::shex::parse_schema;

fn main() {
    let versions = [
        // The deployed schema (Figure 1's bug tracker).
        (
            "v1",
            "Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
             User -> name::Literal, email::Literal?\n\
             Employee -> name::Literal, email::Literal\n",
        ),
        // Candidate 2a: relax Employee (email becomes optional).
        (
            "v2-relaxed",
            "Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
             User -> name::Literal, email::Literal?\n\
             Employee -> name::Literal, email::Literal?\n",
        ),
        // Candidate 2b: make the user's email mandatory.
        (
            "v2-strict",
            "Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
             User -> name::Literal, email::Literal\n\
             Employee -> name::Literal, email::Literal\n",
        ),
    ];
    let names: Vec<&str> = versions.iter().map(|(n, _)| *n).collect();
    let schemas: Vec<_> = versions
        .iter()
        .map(|(name, text)| parse_schema(text).unwrap_or_else(|e| panic!("{name} parses: {e}")))
        .collect();

    // One session answers all N² questions; the engine reuses every
    // per-schema artefact across the row and the column of each version.
    let engine = ContainmentEngine::new();
    let matrix = engine.check_matrix(&schemas);

    println!("containment matrix: does every ROW instance satisfy the COLUMN schema?\n");
    print!("{:>12}", "");
    for name in &names {
        print!(" {name:>12}");
    }
    println!();
    for (i, row) in matrix.iter().enumerate() {
        print!("{:>12}", names[i]);
        for cell in row {
            let mark = match cell {
                Containment::Contained => "yes",
                Containment::NotContained(_) => "NO",
                Containment::Unknown(_) => "?",
            };
            print!(" {mark:>12}");
        }
        println!();
    }

    // An upgrade v1 -> vX is backward compatible iff matrix[v1][vX] holds;
    // the reverse cell tells us whether the upgrade also *widens* the
    // language (admits genuinely new instances) or is an equivalence.
    println!("\nupgrade analysis (old = {}):", names[0]);
    for j in 1..names.len() {
        println!("=== upgrade {} -> {} ===", names[0], names[j]);
        match &matrix[0][j] {
            Containment::Contained => {
                println!(
                    "backward compatible: every v1 instance satisfies {}",
                    names[j]
                );
            }
            Containment::NotContained(witness) => {
                println!("NOT backward compatible; witness instance:");
                print!("{}", write_graph(witness));
            }
            Containment::Unknown(reason) => println!("undecided: {reason}"),
        }
        match &matrix[j][0] {
            Containment::Contained => {
                println!(
                    "...and {} ⊆ v1: the upgrade narrows or preserves the language\n",
                    names[j]
                )
            }
            Containment::NotContained(_) => {
                println!(
                    "...and {} ⊄ v1: the upgrade admits genuinely new instances\n",
                    names[j]
                )
            }
            Containment::Unknown(reason) => println!("...reverse direction undecided: {reason}\n"),
        }
    }

    println!("session stats: {}", engine.stats());
}
