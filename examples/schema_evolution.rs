//! Schema evolution: deciding whether a schema change is backward compatible.
//!
//! A new version of a schema is *backward compatible* when every instance of
//! the old schema is still valid, i.e. `L(old) ⊆ L(new)`. For the tractable
//! fragment `DetShEx₀⁻` this is decided in polynomial time (Corollary 4.4),
//! and when compatibility fails the checker produces a concrete witness
//! instance that breaks, which is exactly what a migration tool needs.
//!
//! Run with `cargo run --example schema_evolution`.

use shapex::containment::det::det_containment;
use shapex::containment::Containment;
use shapex::graph::write_graph;
use shapex::shex::parse_schema;

fn main() {
    let v1 = parse_schema(
        "Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
         User -> name::Literal, email::Literal?\n\
         Employee -> name::Literal, email::Literal\n",
    )
    .expect("v1 parses");

    // Version 2a: relax Employee (email becomes optional) — compatible.
    let v2_relaxed = parse_schema(
        "Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
         User -> name::Literal, email::Literal?\n\
         Employee -> name::Literal, email::Literal?\n",
    )
    .expect("v2a parses");

    // Version 2b: make the user's email mandatory — incompatible.
    let v2_strict = parse_schema(
        "Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
         User -> name::Literal, email::Literal\n\
         Employee -> name::Literal, email::Literal\n",
    )
    .expect("v2b parses");

    for (name, candidate) in [("v2-relaxed", &v2_relaxed), ("v2-strict", &v2_strict)] {
        println!("=== upgrade v1 -> {name} ===");
        match det_containment(&v1, candidate) {
            Ok(Containment::Contained) => {
                println!("backward compatible: every v1 instance satisfies {name}\n");
            }
            Ok(Containment::NotContained(witness)) => {
                println!("NOT backward compatible; witness instance:");
                print!("{}", write_graph(&witness));
                println!();
            }
            Ok(Containment::Unknown) => println!("undecided within budget\n"),
            Err(err) => println!("outside DetShEx0-: {err}\n"),
        }
        // The reverse direction tells us whether the new schema also accepts
        // only old-style instances (a narrowing) or genuinely widens.
        match det_containment(candidate, &v1) {
            Ok(Containment::Contained) => {
                println!("...and {name} ⊆ v1: every {name} instance is also a v1 instance\n")
            }
            Ok(Containment::NotContained(_)) => {
                println!("...and {name} ⊄ v1: the upgrade admits genuinely new instances\n")
            }
            _ => println!(),
        }
    }
}
