//! A long-lived containment service: one shared engine behind a request
//! loop, several concurrent clients.
//!
//! The server thread runs [`ContainmentService::serve`] over an mpsc channel
//! of `(request, reply-sender)` envelopes. Three client threads register the
//! bug-tracker schema family (the upload endpoint — identical submissions
//! intern onto one handle), then issue containment checks by handle; the
//! main thread asks for the full matrix and prints the engine's stats line,
//! the service's metrics surface. All of it shares one
//! `Arc<ContainmentEngine>`, so every client benefits from every other
//! client's warmed caches.
//!
//! Run with `cargo run --example containment_service`.

use std::sync::mpsc;
use std::thread;

use shapex::containment::engine::EngineOptions;
use shapex::service::{ContainmentService, ServiceEnvelope, ServiceRequest, ServiceResponse};
use shapex::shex::parse_schema;

/// The schema versions every client knows about (a real deployment would
/// upload these from different sources; interning makes that free).
const VERSIONS: [(&str, &str); 3] = [
    (
        "v1",
        "Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
         User -> name::Literal, email::Literal?\n\
         Employee -> name::Literal, email::Literal\n",
    ),
    (
        "v2-relaxed",
        "Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
         User -> name::Literal, email::Literal?\n\
         Employee -> name::Literal, email::Literal?\n",
    ),
    (
        "v2-strict",
        "Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
         User -> name::Literal, email::Literal\n\
         Employee -> name::Literal, email::Literal\n",
    ),
];

/// Send one request and wait for its response.
fn call(tx: &mpsc::Sender<ServiceEnvelope>, request: ServiceRequest) -> ServiceResponse {
    let (reply_tx, reply_rx) = mpsc::channel();
    tx.send((request, reply_tx)).expect("server alive");
    reply_rx.recv().expect("server replies")
}

fn main() {
    // Row-parallel matrices when cores are available; answers are identical
    // either way.
    let service = ContainmentService::with_options(EngineOptions::parallel());
    let (tx, rx) = mpsc::channel::<ServiceEnvelope>();

    thread::scope(|scope| {
        // The server: a synchronous request loop over the shared engine.
        let server = {
            let service = service.clone();
            scope.spawn(move || service.serve(rx))
        };

        // Three clients, each registering the whole family (the service
        // interns duplicates) and checking its own upgrade path.
        for client in 0..3usize {
            let tx = tx.clone();
            scope.spawn(move || {
                let mut ids = Vec::new();
                for (name, text) in VERSIONS {
                    let schema = parse_schema(text).unwrap_or_else(|e| panic!("{name}: {e}"));
                    match call(&tx, ServiceRequest::Register(Box::new(schema))) {
                        ServiceResponse::Registered(id) => ids.push(id),
                        other => panic!("register: unexpected {other:?}"),
                    }
                }
                // Client c asks: is upgrading v1 -> candidate c compatible?
                let candidate = client % VERSIONS.len();
                match call(
                    &tx,
                    ServiceRequest::Check {
                        h: ids[0],
                        k: ids[candidate],
                    },
                ) {
                    ServiceResponse::Answer(answer) => println!(
                        "client {client}: v1 ⊆ {:<10} — {answer}",
                        VERSIONS[candidate].0
                    ),
                    other => panic!("check: unexpected {other:?}"),
                }
            });
        }

        // The main thread is a client too: register (free — interned),
        // fetch the full matrix, then the metrics line.
        let ids: Vec<_> = VERSIONS
            .iter()
            .map(|(_, text)| {
                let schema = Box::new(parse_schema(text).unwrap());
                match call(&tx, ServiceRequest::Register(schema)) {
                    ServiceResponse::Registered(id) => id,
                    other => panic!("register: unexpected {other:?}"),
                }
            })
            .collect();
        let matrix = match call(&tx, ServiceRequest::Matrix(ids)) {
            ServiceResponse::Matrix(matrix) => matrix,
            other => panic!("matrix: unexpected {other:?}"),
        };
        println!("\ncontainment matrix (row ⊆ column?):");
        print!("{:>12}", "");
        for (name, _) in VERSIONS {
            print!(" {name:>12}");
        }
        println!();
        for (i, row) in matrix.iter().enumerate() {
            print!("{:>12}", VERSIONS[i].0);
            for cell in row {
                let mark = if cell.is_contained() {
                    "yes"
                } else if cell.is_not_contained() {
                    "NO"
                } else {
                    "?"
                };
                print!(" {mark:>12}");
            }
            println!();
        }

        match call(&tx, ServiceRequest::Stats) {
            ServiceResponse::Stats(stats) => println!("\nservice metrics: {stats}"),
            other => panic!("stats: unexpected {other:?}"),
        }

        drop(tx); // hang up: the server loop drains and returns
        server.join().expect("server thread");
    });

    // The service handle still works without the loop (pure dispatch).
    let direct = service.handle(ServiceRequest::Stats);
    if let ServiceResponse::Stats(stats) = direct {
        assert_eq!(stats.schemas, 3, "all clients interned onto one family");
    }
}
