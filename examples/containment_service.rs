//! A long-lived, multi-tenant containment service: one shared
//! bounded-memory engine behind a pool of sharded workers, several tenants,
//! an overload burst, and the metrics line.
//!
//! [`ContainmentService::pool`] spawns the serve loops — one bounded queue
//! per worker, so a slow request delays only its own queue while a
//! [`PoolClient`] rotates fresh requests past it. Three tenant threads
//! register the bug-tracker schema family (the upload endpoint — identical
//! submissions intern onto one engine entry across tenants, but each tenant
//! can only query handles it registered itself), then check their own
//! upgrade paths; the main thread fetches the full matrix through the pool,
//! fires a deliberate burst at a tiny undrained queue to show the explicit
//! [`ServiceError::Overloaded`] rejection, and prints the service stats:
//! engine cache/memory counters (the engine runs under a cache budget, so
//! evictions and resident bytes are live numbers), tenants, rejections, and
//! the request-latency histogram.
//!
//! Run with `cargo run --example containment_service`.

use std::thread;

use shapex::containment::engine::EngineOptions;
use shapex::service::{
    ContainmentService, ServiceError, ServiceRequest, ServiceResponse, TenantId,
};
use shapex::shex::parse_schema;

/// The schema versions every tenant knows about (a real deployment would
/// upload these from different sources; interning makes that free).
const VERSIONS: [(&str, &str); 3] = [
    (
        "v1",
        "Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
         User -> name::Literal, email::Literal?\n\
         Employee -> name::Literal, email::Literal\n",
    ),
    (
        "v2-relaxed",
        "Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
         User -> name::Literal, email::Literal?\n\
         Employee -> name::Literal, email::Literal?\n",
    ),
    (
        "v2-strict",
        "Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
         User -> name::Literal, email::Literal\n\
         Employee -> name::Literal, email::Literal\n",
    ),
];

fn main() {
    // Production shape: parallel matrix rows AND a byte budget on the
    // evictable caches — a long-lived service must not grow without bound.
    let options = EngineOptions::builder()
        .threads(
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
        .matrix_threads(
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
        .cache_budget(8 << 20) // 8 MiB across pools, memos, and arenas
        .build();
    let service = ContainmentService::with_options(options);

    // One tenant per client organisation; the main thread stays on the
    // default tenant.
    let tenants: Vec<TenantId> = (0..3).map(|_| service.create_tenant()).collect();

    // The servers: a pool of sharded serve loops over the shared engine —
    // one bounded queue per worker, so one slow request cannot
    // head-of-line-block every tenant.
    let pool = service.pool(2, 64);
    let client = pool.client(TenantId::DEFAULT);

    thread::scope(|scope| {
        // Three tenants, each registering the whole family (the engine
        // interns duplicates across tenants) and checking its own upgrade
        // path. Each drives the service directly through `handle` — the
        // typed-API path; the queue below is the transport path.
        for (t, &tenant) in tenants.iter().enumerate() {
            let service = service.clone();
            scope.spawn(move || {
                let mut ids = Vec::new();
                for (name, text) in VERSIONS {
                    let schema = parse_schema(text).unwrap_or_else(|e| panic!("{name}: {e}"));
                    match service.handle(tenant, ServiceRequest::Register(Box::new(schema))) {
                        Ok(ServiceResponse::Registered(id)) => ids.push(id),
                        other => panic!("register: unexpected {other:?}"),
                    }
                }
                let candidate = t % VERSIONS.len();
                match service.handle(
                    tenant,
                    ServiceRequest::Check {
                        h: ids[0],
                        k: ids[candidate],
                    },
                ) {
                    Ok(ServiceResponse::Answer(answer)) => {
                        println!("{tenant}: v1 ⊆ {:<10} — {answer}", VERSIONS[candidate].0)
                    }
                    other => panic!("check: unexpected {other:?}"),
                }
            });
        }

        // The main thread talks through the pool's queues: register (free —
        // interned), fetch the full matrix, then demonstrate backpressure.
        let ids: Vec<_> = VERSIONS
            .iter()
            .map(|(_, text)| {
                let schema = Box::new(parse_schema(text).unwrap());
                match client.call_blocking(ServiceRequest::Register(schema)) {
                    Ok(ServiceResponse::Registered(id)) => id,
                    other => panic!("register: unexpected {other:?}"),
                }
            })
            .collect();
        let matrix = match client.call_blocking(ServiceRequest::Matrix(ids)) {
            Ok(ServiceResponse::Matrix(matrix)) => matrix,
            other => panic!("matrix: unexpected {other:?}"),
        };
        println!("\ncontainment matrix (row ⊆ column?):");
        print!("{:>12}", "");
        for (name, _) in VERSIONS {
            print!(" {name:>12}");
        }
        println!();
        for (i, row) in matrix.iter().enumerate() {
            print!("{:>12}", VERSIONS[i].0);
            for cell in row {
                let mark = if cell.is_contained() {
                    "yes"
                } else if cell.is_not_contained() {
                    "NO"
                } else {
                    "?"
                };
                print!(" {mark:>12}");
            }
            println!();
        }

        // Backpressure: a capacity-2 queue that no server drains. Two
        // envelopes park in it; every further call is rejected fast with
        // `Overloaded` instead of queuing unboundedly.
        let (burst_client, _undrained) = service.connect(TenantId::DEFAULT, 2);
        for _ in 0..2 {
            let (reply, _) = std::sync::mpsc::channel();
            burst_client
                .sender()
                .try_send(shapex::service::ServiceEnvelope {
                    tenant: TenantId::DEFAULT,
                    request: ServiceRequest::Stats,
                    reply,
                    deadline: None,
                })
                .expect("queue has room for the first two");
        }
        let rejected = (0..16)
            .filter(|_| {
                matches!(
                    burst_client.call(ServiceRequest::Stats),
                    Err(ServiceError::Overloaded)
                )
            })
            .count();
        println!("\noverload burst: {rejected}/16 requests rejected with Overloaded");

        match client.call_blocking(ServiceRequest::Stats) {
            Ok(ServiceResponse::Stats(stats)) => println!("\nservice metrics: {stats}"),
            other => panic!("stats: unexpected {other:?}"),
        }
    });

    drop(client); // hang up: the worker loops drain and return
    pool.join();

    // The service handle still works without the loop (pure dispatch).
    let direct = service.handle(TenantId::DEFAULT, ServiceRequest::Stats);
    if let Ok(ServiceResponse::Stats(stats)) = direct {
        assert_eq!(
            stats.engine.schemas, 3,
            "all tenants interned onto one family"
        );
        assert_eq!(stats.tenants, 4, "default + three minted");
        assert_eq!(stats.rejected, 16, "the whole burst was counted");
    }
}
